package partition_test

import (
	"errors"
	"fmt"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/partition"
	"fairrank/internal/testkit"
)

// FuzzEnumerate builds a tiny two-attribute dataset from fuzz bytes and
// cross-checks EnumerateCellGroupings against the oracle's recursive
// set-partition enumeration: every yielded partitioning is a valid disjoint
// cover, groupings are pairwise distinct, and when the budget suffices the
// canonical key set equals the oracle's over the non-empty cells.
// EnumerateTrees runs on the same dataset as a never-invalid smoke check.
// Layout: data[0]/data[1] pick attribute cardinalities, the rest assigns one
// worker per byte to a cell.
func FuzzEnumerate(f *testing.F) {
	f.Add([]byte{2, 3, 0, 1, 2, 3, 4, 5})
	f.Add([]byte{2, 2, 0, 0, 0, 3})
	f.Add([]byte{3, 3, 8, 1, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		cardA := int(data[0])%3 + 2 // 2..4
		cardB := int(data[1])%3 + 2
		rows := data[2:]
		if len(rows) > 12 {
			rows = rows[:12]
		}

		valsA := make([]string, cardA)
		for i := range valsA {
			valsA[i] = fmt.Sprintf("a%d", i)
		}
		valsB := make([]string, cardB)
		for i := range valsB {
			valsB[i] = fmt.Sprintf("b%d", i)
		}
		schema := &dataset.Schema{
			Protected: []dataset.Attribute{dataset.Cat("A", valsA...), dataset.Cat("B", valsB...)},
			Observed:  []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
		}
		b := dataset.NewBuilder(schema)
		cells := map[[2]int]bool{}
		for i, by := range rows {
			cell := int(by) % (cardA * cardB)
			ca, cb := cell/cardB, cell%cardB
			cells[[2]int{ca, cb}] = true
			b.Add(fmt.Sprintf("w%d", i),
				map[string]any{"A": valsA[ca], "B": valsB[cb]},
				map[string]any{"Score": float64(int(by)) / 255})
		}
		ds, err := b.Build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}

		var o testkit.Oracle
		nCells := len(cells)
		want := o.Bell(nCells)
		const budget = 5000

		seen := map[string]bool{}
		err = partition.EnumerateCellGroupings(ds, []int{0, 1}, budget, func(pt *partition.Partitioning) bool {
			if verr := pt.Validate(ds); verr != nil {
				t.Fatalf("invalid grouping: %v", verr)
			}
			blocks := make([][]int, 0, len(pt.Parts))
			for _, p := range pt.Parts {
				blocks = append(blocks, p.Indices)
			}
			key := testkit.BlockKey(blocks)
			if seen[key] {
				t.Fatalf("duplicate grouping %q", key)
			}
			seen[key] = true
			return true
		})
		switch {
		case errors.Is(err, partition.ErrBudgetExceeded):
			if want <= budget {
				t.Fatalf("budget %d exceeded but Bell(%d)=%d fits", budget, nCells, want)
			}
		case err != nil:
			t.Fatalf("EnumerateCellGroupings: %v", err)
		default:
			// Non-empty cells partition the rows, so distinct cell groupings
			// induce distinct row partitions: exactly Bell(nCells) keys.
			if len(seen) != want {
				t.Fatalf("enumerated %d distinct groupings, Bell(%d)=%d", len(seen), nCells, want)
			}
		}

		if err := partition.EnumerateTrees(ds, []int{0, 1}, budget, func(pt *partition.Partitioning) bool {
			if verr := pt.Validate(ds); verr != nil {
				t.Fatalf("invalid tree partitioning: %v", verr)
			}
			return true
		}); err != nil && !errors.Is(err, partition.ErrBudgetExceeded) {
			t.Fatalf("EnumerateTrees: %v", err)
		}
	})
}
