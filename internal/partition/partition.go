// Package partition implements the partitioning machinery of the paper:
// partitions of workers defined by protected-attribute constraints, the
// split operation the greedy algorithms are built from, and exhaustive
// enumeration of the partitioning space (with an explicit budget, since the
// space is exponential — the reason the paper's brute-force solver never
// terminated).
package partition

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fairrank/internal/dataset"
)

// Constraint pins one protected attribute (by schema index) to one of its
// partitioning values (category index or numeric bucket index).
type Constraint struct {
	Attr  int
	Value int
}

// Partition is a group of workers selected by a conjunction of constraints
// on protected attributes — or, for partitions produced by merging cells
// (see EnumerateCellGroupings), an explicitly named union of such groups.
// Indices are row numbers into the dataset.
type Partition struct {
	// Constraints defining the partition, in split order. Empty for the
	// root and for named unions.
	Constraints []Constraint
	// Name overrides the constraint-derived identity for partitions that
	// are not conjunctions (e.g. merged cell blocks). When set, Key and
	// Label use it directly.
	Name string
	// Indices of the workers in the partition.
	Indices []int
}

// Root returns the partition containing every worker, with no constraints.
func Root(ds *dataset.Dataset) *Partition {
	return &Partition{Indices: ds.AllIndices()}
}

// Size returns the number of workers in the partition.
func (p *Partition) Size() int { return len(p.Indices) }

// Key returns a canonical identity for the partition's constraint set,
// independent of split order. Two partitions of the same dataset with equal
// keys contain exactly the same workers.
func (p *Partition) Key() string {
	if p.Name != "" {
		return "name:" + p.Name
	}
	if len(p.Constraints) == 0 {
		return "*"
	}
	cs := make([]Constraint, len(p.Constraints))
	copy(cs, p.Constraints)
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Attr != cs[j].Attr {
			return cs[i].Attr < cs[j].Attr
		}
		return cs[i].Value < cs[j].Value
	})
	var b strings.Builder
	for i, c := range cs {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d=%d", c.Attr, c.Value)
	}
	return b.String()
}

// Label renders the partition's constraints human-readably, e.g.
// "Gender=Male ∧ Language=English", or "ALL" for the root. Named unions
// render as their name.
func (p *Partition) Label(schema *dataset.Schema) string {
	if p.Name != "" {
		return p.Name
	}
	if len(p.Constraints) == 0 {
		return "ALL"
	}
	parts := make([]string, len(p.Constraints))
	for i, c := range p.Constraints {
		a := schema.Protected[c.Attr]
		parts[i] = fmt.Sprintf("%s=%s", a.Name, a.ValueLabel(c.Value))
	}
	return strings.Join(parts, " ∧ ")
}

// Split divides p into one child per value of protected attribute attr that
// actually occurs among p's workers. Children inherit p's constraints plus
// the new one. Empty children are not returned; the union of the children
// is exactly p.
func Split(ds *dataset.Dataset, p *Partition, attr int) []*Partition {
	return SplitObserve(ds, p, attr, nil)
}

// SplitObserve is Split with a single-pass scatter hook: when observe is
// non-nil it is invoked as observe(v, i) for every row i of p while the
// row is bucketed under attribute value v, letting callers accumulate
// per-child state (score histograms, running sums) in the same scan that
// builds the child index slices, instead of re-walking each child
// afterwards. The returned children are exactly Split's: one per value of
// attr that occurs in p, in ascending value order, empty children elided.
func SplitObserve(ds *dataset.Dataset, p *Partition, attr int, observe func(value, row int)) []*Partition {
	card := ds.Schema().Protected[attr].Cardinality()
	buckets := make([][]int, card)
	// One column fetch, then pure slice indexing: the scan reads the
	// attribute's code block directly (mapped bytes for snapshot-backed
	// datasets) instead of paying a per-row accessor call.
	codes := ds.CodeColumn(attr)
	if observe == nil {
		for _, i := range p.Indices {
			c := int(codes[i])
			buckets[c] = append(buckets[c], i)
		}
	} else {
		for _, i := range p.Indices {
			c := int(codes[i])
			buckets[c] = append(buckets[c], i)
			observe(c, i)
		}
	}
	var out []*Partition
	for v, idx := range buckets {
		if len(idx) == 0 {
			continue
		}
		cons := make([]Constraint, len(p.Constraints)+1)
		copy(cons, p.Constraints)
		cons[len(cons)-1] = Constraint{Attr: attr, Value: v}
		out = append(out, &Partition{Constraints: cons, Indices: idx})
	}
	return out
}

// SplitAll splits every partition in parts on attr and returns the combined
// children. Partitions in which attr has a single value survive as their
// sole child (with the extra constraint attached).
func SplitAll(ds *dataset.Dataset, parts []*Partition, attr int) []*Partition {
	var out []*Partition
	for _, p := range parts {
		out = append(out, Split(ds, p, attr)...)
	}
	return out
}

// Partitioning is a full disjoint partitioning of the dataset: the parts
// are pairwise disjoint and their union is all workers (Definition 1's
// constraints).
type Partitioning struct {
	Parts []*Partition
}

// Size returns the number of partitions.
func (pt *Partitioning) Size() int { return len(pt.Parts) }

// Validate checks the full-disjoint-cover invariant against the dataset.
func (pt *Partitioning) Validate(ds *dataset.Dataset) error {
	if pt == nil || len(pt.Parts) == 0 {
		return errors.New("partition: empty partitioning")
	}
	seen := make([]bool, ds.N())
	total := 0
	for _, p := range pt.Parts {
		for _, i := range p.Indices {
			if i < 0 || i >= ds.N() {
				return fmt.Errorf("partition: index %d out of range", i)
			}
			if seen[i] {
				return fmt.Errorf("partition: worker %d appears in two partitions", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != ds.N() {
		return fmt.Errorf("partition: %d of %d workers covered", total, ds.N())
	}
	return nil
}

// Describe renders each partition as "label (n=size)", sorted by label, one
// per line — the form used in reports and examples.
func (pt *Partitioning) Describe(schema *dataset.Schema) string {
	lines := make([]string, len(pt.Parts))
	for i, p := range pt.Parts {
		lines[i] = fmt.Sprintf("%s (n=%d)", p.Label(schema), p.Size())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// AttributesUsed returns the sorted set of protected attribute indices that
// appear in any partition's constraints.
func (pt *Partitioning) AttributesUsed() []int {
	set := map[int]bool{}
	for _, p := range pt.Parts {
		for _, c := range p.Constraints {
			set[c.Attr] = true
		}
	}
	out := make([]int, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}
