// Differential tests for the exhaustive enumerators against the testkit
// oracles. External test package: testkit imports partition, so these live
// in partition_test to avoid the cycle.
package partition_test

import (
	"errors"
	"fmt"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/partition"
	"fairrank/internal/testkit"
)

// fullFactorial builds a dataset with exactly one worker in every cell of a
// Gender(2) × Language(3) cross product, so cell structure is known exactly:
// 6 non-empty cells, one row each.
func fullFactorial(t *testing.T) *dataset.Dataset {
	t.Helper()
	schema := &dataset.Schema{
		Protected: []dataset.Attribute{
			dataset.Cat("Gender", "male", "female"),
			dataset.Cat("Language", "en", "fr", "de"),
		},
		Observed: []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
	b := dataset.NewBuilder(schema)
	id := 0
	for _, g := range []string{"male", "female"} {
		for _, l := range []string{"en", "fr", "de"} {
			b.Add(fmt.Sprintf("w%d", id),
				map[string]any{"Gender": g, "Language": l},
				map[string]any{"Score": float64(id) / 6})
			id++
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// blocksOf projects a yielded partitioning onto its row-index blocks in the
// oracle's canonical key form.
func blocksOf(pt *partition.Partitioning) string {
	blocks := make([][]int, 0, len(pt.Parts))
	for _, p := range pt.Parts {
		blocks = append(blocks, p.Indices)
	}
	return testkit.BlockKey(blocks)
}

// EnumerateCellGroupings over k non-empty single-row cells must yield
// exactly the Bell(k) set partitions the oracle enumerates by recursive
// block insertion — same count, same canonical keys, no duplicates.
func TestCellGroupingsMatchOracleSetPartitions(t *testing.T) {
	var o testkit.Oracle
	ds := fullFactorial(t)

	want := map[string]bool{}
	for _, blocks := range o.SetPartitions(6) {
		want[testkit.BlockKey(blocks)] = true
	}
	if len(want) != o.Bell(6) {
		t.Fatalf("oracle produced %d keys, Bell(6)=%d", len(want), o.Bell(6))
	}

	got := map[string]bool{}
	err := partition.EnumerateCellGroupings(ds, []int{0, 1}, 10000, func(pt *partition.Partitioning) bool {
		if err := pt.Validate(ds); err != nil {
			t.Fatalf("yielded invalid partitioning: %v", err)
		}
		key := blocksOf(pt)
		if got[key] {
			t.Fatalf("duplicate grouping %q", key)
		}
		got[key] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("enumerated %d groupings, oracle has %d", len(got), len(want))
	}
	for key := range got {
		if !want[key] {
			t.Fatalf("enumerator yielded %q, unknown to the oracle", key)
		}
	}
}

// The budget must bite exactly: Bell(6)=203 groupings fit in a budget of
// 203 but not 202.
func TestCellGroupingsBudget(t *testing.T) {
	ds := fullFactorial(t)
	count := 0
	if err := partition.EnumerateCellGroupings(ds, []int{0, 1}, 203, func(*partition.Partitioning) bool {
		count++
		return true
	}); err != nil {
		t.Fatalf("budget 203: %v (yielded %d)", err, count)
	}
	err := partition.EnumerateCellGroupings(ds, []int{0, 1}, 202, func(*partition.Partitioning) bool { return true })
	if !errors.Is(err, partition.ErrBudgetExceeded) {
		t.Fatalf("budget 202: got %v, want ErrBudgetExceeded", err)
	}
}

// EnumerateTrees on a full-factorial dataset (every split realizes every
// value) must yield exactly CountTrees(cardinalities) partitionings, each a
// valid full disjoint cover.
func TestEnumerateTreesMatchesCountTrees(t *testing.T) {
	ds := fullFactorial(t)
	want := partition.CountTrees([]int{2, 3})
	count := 0
	err := partition.EnumerateTrees(ds, []int{0, 1}, 100000, func(pt *partition.Partitioning) bool {
		if err := pt.Validate(ds); err != nil {
			t.Fatalf("yielded invalid partitioning: %v", err)
		}
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if float64(count) != want {
		t.Fatalf("enumerated %d trees, CountTrees = %v", count, want)
	}
}

// On arbitrary generated datasets (empty cells, skewed sizes) every yielded
// partitioning from both enumerators must still be a valid cover.
func TestEnumeratorsAlwaysYieldValidCovers(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		g := testkit.NewGen(seed)
		ds, err := g.WorkerDataset(g.R.IntRange(1, 30))
		if err != nil {
			t.Fatal(err)
		}
		attrs := []int{0}
		if len(ds.Schema().Protected) > 1 {
			attrs = append(attrs, 1)
		}
		check := func(pt *partition.Partitioning) bool {
			if err := pt.Validate(ds); err != nil {
				t.Fatalf("seed %d: invalid partitioning: %v", seed, err)
			}
			return true
		}
		if err := partition.EnumerateTrees(ds, attrs, 5000, check); err != nil && !errors.Is(err, partition.ErrBudgetExceeded) {
			t.Fatalf("seed %d: EnumerateTrees: %v", seed, err)
		}
		if err := partition.EnumerateCellGroupings(ds, attrs, 5000, check); err != nil && !errors.Is(err, partition.ErrBudgetExceeded) {
			t.Fatalf("seed %d: EnumerateCellGroupings: %v", seed, err)
		}
	}
}
