package partition

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"fairrank/internal/dataset"
)

// ErrBudgetExceeded is returned when exhaustive enumeration would exceed
// its partitioning budget. This is the expected outcome at realistic sizes:
// the paper's own brute-force implementation "failed to terminate after
// running for two days with only 6 attributes".
var ErrBudgetExceeded = errors.New("partition: enumeration budget exceeded")

// EnumerateTrees yields every full disjoint partitioning obtainable by
// hierarchical attribute splits: starting from the root, each partition is
// either kept as a leaf or split on a protected attribute not yet used on
// its path, independently per branch (exactly the space the paper's
// balanced/unbalanced heuristics navigate). attrs lists the usable
// protected attribute indices.
//
// yield is called once per partitioning; returning false stops enumeration
// early. budget caps the number of partitionings yielded; exceeding it
// returns ErrBudgetExceeded.
func EnumerateTrees(ds *dataset.Dataset, attrs []int, budget int, yield func(*Partitioning) bool) error {
	if budget <= 0 {
		return ErrBudgetExceeded
	}
	root := Root(ds)
	count := 0
	stopped := false

	// options returns every list of leaf partitions reachable from p with
	// the given remaining attributes. The root is never a leaf on its own
	// unless no attributes are available: the paper's problem asks for a
	// partitioning, and the trivial single-partition one has unfairness 0,
	// but we still include it for completeness of the space.
	var options func(p *Partition, remaining []int) ([][]*Partition, error)
	options = func(p *Partition, remaining []int) ([][]*Partition, error) {
		result := [][]*Partition{{p}} // keep p as a leaf
		for ai, a := range remaining {
			children := Split(ds, p, a)
			rest := make([]int, 0, len(remaining)-1)
			rest = append(rest, remaining[:ai]...)
			rest = append(rest, remaining[ai+1:]...)
			// Cartesian product of each child's options.
			combos := [][]*Partition{{}}
			for _, ch := range children {
				chOpts, err := options(ch, rest)
				if err != nil {
					return nil, err
				}
				var next [][]*Partition
				for _, combo := range combos {
					for _, opt := range chOpts {
						merged := make([]*Partition, 0, len(combo)+len(opt))
						merged = append(merged, combo...)
						merged = append(merged, opt...)
						next = append(next, merged)
						if len(next) > budget+1 {
							return nil, ErrBudgetExceeded
						}
					}
				}
				combos = next
			}
			result = append(result, combos...)
			if len(result) > budget+1 {
				return nil, ErrBudgetExceeded
			}
		}
		return result, nil
	}

	opts, err := options(root, attrs)
	if err != nil {
		return err
	}
	for _, parts := range opts {
		count++
		if count > budget {
			return ErrBudgetExceeded
		}
		if !yield(&Partitioning{Parts: parts}) {
			stopped = true
			break
		}
	}
	_ = stopped
	return nil
}

// EnumerateCellGroupings enumerates every full disjoint partitioning
// obtainable by grouping the non-empty cells of the full attribute
// cross-product into blocks — the complete set-partition space, a strict
// superset of the hierarchical tree space of EnumerateTrees (a tree leaf is
// always a union of cells, but not every union of cells is a tree leaf).
// Enumeration walks restricted growth strings; the number of groupings is
// the Bell number of the cell count, so the budget bites quickly.
//
// yield receives each partitioning; returning false stops early. Exceeding
// budget returns ErrBudgetExceeded.
func EnumerateCellGroupings(ds *dataset.Dataset, attrs []int, budget int, yield func(*Partitioning) bool) error {
	if budget <= 0 {
		return ErrBudgetExceeded
	}
	cells := []*Partition{Root(ds)}
	for _, a := range attrs {
		cells = SplitAll(ds, cells, a)
	}
	n := len(cells)
	labels := make([]int, n)
	count := 0
	stopped := false

	var walk func(i, maxLabel int) error
	walk = func(i, maxLabel int) error {
		if stopped {
			return nil
		}
		if i == n {
			count++
			if count > budget {
				return ErrBudgetExceeded
			}
			blocks := make([][]int, maxLabel+1)
			names := make([][]string, maxLabel+1)
			for c, l := range labels {
				blocks[l] = append(blocks[l], cells[c].Indices...)
				names[l] = append(names[l], fmt.Sprintf("c%d", c))
			}
			parts := make([]*Partition, 0, maxLabel+1)
			for l, idx := range blocks {
				parts = append(parts, &Partition{
					Name:    "{" + strings.Join(names[l], "+") + "}",
					Indices: idx,
				})
			}
			if !yield(&Partitioning{Parts: parts}) {
				stopped = true
			}
			return nil
		}
		for l := 0; l <= maxLabel+1; l++ {
			labels[i] = l
			next := maxLabel
			if l > maxLabel {
				next = l
			}
			if err := walk(i+1, next); err != nil {
				return err
			}
			if stopped {
				return nil
			}
		}
		return nil
	}
	if n == 0 {
		return errors.New("partition: no cells to group")
	}
	labels[0] = 0
	return walk(1, 0)
}

// CountTrees computes (without materializing) the number of hierarchical
// split partitionings for the given per-attribute cardinalities, assuming
// every split realizes all values. It grows explosively, which is the
// quantitative form of the paper's hardness argument. Returns +Inf when the
// count overflows float64 meaningfully (> 1e300).
func CountTrees(cardinalities []int) float64 {
	var count func(remaining []int) float64
	count = func(remaining []int) float64 {
		total := 1.0 // leaf
		for ai, card := range remaining {
			rest := make([]int, 0, len(remaining)-1)
			rest = append(rest, remaining[:ai]...)
			rest = append(rest, remaining[ai+1:]...)
			sub := count(rest)
			prod := 1.0
			for i := 0; i < card; i++ {
				prod *= sub
				if prod > 1e300 {
					return math.Inf(1)
				}
			}
			total += prod
			if total > 1e300 {
				return math.Inf(1)
			}
		}
		return total
	}
	return count(cardinalities)
}
