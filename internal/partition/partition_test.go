package partition

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"fairrank/internal/dataset"
	"fairrank/internal/rng"
)

func testSchema() *dataset.Schema {
	return &dataset.Schema{
		Protected: []dataset.Attribute{
			dataset.Cat("Gender", "Male", "Female"),
			dataset.Cat("Language", "English", "Indian", "Other"),
		},
		Observed: []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
}

// buildRandom creates n workers with random attribute values.
func buildRandom(t *testing.T, n int, seed uint64) *dataset.Dataset {
	t.Helper()
	r := rng.New(seed)
	b := dataset.NewBuilder(testSchema())
	genders := []string{"Male", "Female"}
	langs := []string{"English", "Indian", "Other"}
	for i := 0; i < n; i++ {
		b.Add("w", map[string]any{
			"Gender":   rng.Pick(r, genders),
			"Language": rng.Pick(r, langs),
		}, map[string]any{"Score": r.Float64()})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRootContainsEveryone(t *testing.T) {
	ds := buildRandom(t, 20, 1)
	root := Root(ds)
	if root.Size() != 20 || len(root.Constraints) != 0 {
		t.Fatalf("root size=%d constraints=%v", root.Size(), root.Constraints)
	}
	if root.Key() != "*" {
		t.Errorf("root key = %q", root.Key())
	}
	if root.Label(ds.Schema()) != "ALL" {
		t.Errorf("root label = %q", root.Label(ds.Schema()))
	}
}

func TestSplitPartitionInvariants(t *testing.T) {
	ds := buildRandom(t, 50, 2)
	root := Root(ds)
	children := Split(ds, root, 0)
	if len(children) != 2 {
		t.Fatalf("gender split gave %d children", len(children))
	}
	total := 0
	for _, c := range children {
		total += c.Size()
		if len(c.Constraints) != 1 || c.Constraints[0].Attr != 0 {
			t.Errorf("child constraints = %v", c.Constraints)
		}
		// Every member must actually have the constrained value.
		for _, i := range c.Indices {
			if ds.Code(0, i) != c.Constraints[0].Value {
				t.Errorf("worker %d in wrong gender partition", i)
			}
		}
	}
	if total != 50 {
		t.Fatalf("children cover %d of 50", total)
	}
}

func TestSplitDropsEmptyValues(t *testing.T) {
	// All workers male: split on gender returns one child.
	b := dataset.NewBuilder(testSchema())
	for i := 0; i < 5; i++ {
		b.Add("w", map[string]any{"Gender": "Male", "Language": "English"},
			map[string]any{"Score": 0.5})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	children := Split(ds, Root(ds), 0)
	if len(children) != 1 || children[0].Size() != 5 {
		t.Fatalf("split = %d children", len(children))
	}
}

func TestSplitAll(t *testing.T) {
	ds := buildRandom(t, 100, 3)
	l1 := Split(ds, Root(ds), 0)
	l2 := SplitAll(ds, l1, 1)
	pt := &Partitioning{Parts: l2}
	if err := pt.Validate(ds); err != nil {
		t.Fatalf("two-level split invalid: %v", err)
	}
	if len(l2) > 6 {
		t.Fatalf("%d parts from 2x3 cross", len(l2))
	}
}

func TestKeyOrderIndependent(t *testing.T) {
	a := &Partition{Constraints: []Constraint{{0, 1}, {1, 2}}}
	b := &Partition{Constraints: []Constraint{{1, 2}, {0, 1}}}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := &Partition{Constraints: []Constraint{{0, 0}, {1, 2}}}
	if a.Key() == c.Key() {
		t.Fatal("different constraints share a key")
	}
}

func TestLabel(t *testing.T) {
	s := testSchema()
	p := &Partition{Constraints: []Constraint{{0, 0}, {1, 1}}}
	if got := p.Label(s); got != "Gender=Male ∧ Language=Indian" {
		t.Errorf("Label = %q", got)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	ds := buildRandom(t, 10, 4)
	var empty *Partitioning
	if err := empty.Validate(ds); err == nil {
		t.Error("nil partitioning accepted")
	}
	if err := (&Partitioning{}).Validate(ds); err == nil {
		t.Error("empty partitioning accepted")
	}
	dup := &Partitioning{Parts: []*Partition{
		{Indices: ds.AllIndices()},
		{Indices: []int{0}},
	}}
	if err := dup.Validate(ds); err == nil {
		t.Error("overlapping partitioning accepted")
	}
	hole := &Partitioning{Parts: []*Partition{{Indices: []int{0, 1, 2}}}}
	if err := hole.Validate(ds); err == nil {
		t.Error("incomplete partitioning accepted")
	}
	oob := &Partitioning{Parts: []*Partition{{Indices: []int{999}}}}
	if err := oob.Validate(ds); err == nil {
		t.Error("out-of-range index accepted")
	}
}

// Property: any random sequence of splits yields a valid partitioning.
func TestSplitSequenceInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		ds := buildRandom(&testing.T{}, 30+r.Intn(50), seed)
		parts := []*Partition{Root(ds)}
		attrs := r.Perm(len(ds.Schema().Protected))
		for _, a := range attrs {
			if r.Intn(2) == 0 {
				parts = SplitAll(ds, parts, a)
			} else if len(parts) > 0 {
				// Split only one random partition (unbalanced shape).
				k := r.Intn(len(parts))
				children := Split(ds, parts[k], a)
				parts = append(parts[:k:k], append(children, parts[k+1:]...)...)
			}
		}
		pt := &Partitioning{Parts: parts}
		return pt.Validate(ds) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDescribe(t *testing.T) {
	ds := buildRandom(t, 40, 5)
	parts := Split(ds, Root(ds), 0)
	pt := &Partitioning{Parts: parts}
	d := pt.Describe(ds.Schema())
	if !strings.Contains(d, "Gender=Male") || !strings.Contains(d, "Gender=Female") {
		t.Errorf("Describe = %q", d)
	}
}

func TestAttributesUsed(t *testing.T) {
	ds := buildRandom(t, 40, 6)
	l1 := Split(ds, Root(ds), 1)
	l2 := SplitAll(ds, l1, 0)
	pt := &Partitioning{Parts: l2}
	used := pt.AttributesUsed()
	if len(used) != 2 || used[0] != 0 || used[1] != 1 {
		t.Fatalf("AttributesUsed = %v", used)
	}
	if got := (&Partitioning{Parts: []*Partition{Root(ds)}}).AttributesUsed(); len(got) != 0 {
		t.Fatalf("root AttributesUsed = %v", got)
	}
}

func TestEnumerateTreesSmall(t *testing.T) {
	ds := buildRandom(t, 30, 7)
	var all []*Partitioning
	err := EnumerateTrees(ds, []int{0, 1}, 1000, func(pt *Partitioning) bool {
		all = append(all, pt)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Space with attrs {Gender(2), Language(3)} assuming all values present:
	// leaf(1) + split-G then each of 2 children {leaf or split-L} (2²=4)
	// + split-L then each of 3 children {leaf or split-G} (2³=8) = 13.
	if len(all) != 13 {
		t.Fatalf("enumerated %d partitionings, want 13", len(all))
	}
	for _, pt := range all {
		if err := pt.Validate(ds); err != nil {
			t.Fatalf("enumerated invalid partitioning: %v", err)
		}
	}
}

func TestEnumerateTreesBudget(t *testing.T) {
	ds := buildRandom(t, 30, 8)
	err := EnumerateTrees(ds, []int{0, 1}, 3, func(*Partitioning) bool { return true })
	if err != ErrBudgetExceeded {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if err := EnumerateTrees(ds, []int{0, 1}, 0, func(*Partitioning) bool { return true }); err != ErrBudgetExceeded {
		t.Fatalf("zero budget err = %v", err)
	}
}

func TestEnumerateTreesEarlyStop(t *testing.T) {
	ds := buildRandom(t, 30, 9)
	n := 0
	err := EnumerateTrees(ds, []int{0, 1}, 1000, func(*Partitioning) bool {
		n++
		return n < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestEnumerateCellGroupingsBellCount(t *testing.T) {
	// Gender×Language over a population realizing all 6 cells: the
	// grouping count is Bell(6) = 203.
	ds := buildRandom(t, 200, 11)
	n := 0
	err := EnumerateCellGroupings(ds, []int{0, 1}, 1000, func(pt *Partitioning) bool {
		if err := pt.Validate(ds); err != nil {
			t.Fatalf("invalid grouping: %v", err)
		}
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 203 {
		t.Fatalf("enumerated %d groupings, want Bell(6)=203", n)
	}
}

func TestEnumerateCellGroupingsBudgetAndStop(t *testing.T) {
	ds := buildRandom(t, 100, 12)
	if err := EnumerateCellGroupings(ds, []int{0, 1}, 5, func(*Partitioning) bool { return true }); err != ErrBudgetExceeded {
		t.Fatalf("budget err = %v", err)
	}
	if err := EnumerateCellGroupings(ds, []int{0, 1}, 0, func(*Partitioning) bool { return true }); err != ErrBudgetExceeded {
		t.Fatalf("zero budget err = %v", err)
	}
	n := 0
	if err := EnumerateCellGroupings(ds, []int{0}, 100, func(*Partitioning) bool { n++; return n < 2 }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestCellGroupingKeysDistinct(t *testing.T) {
	// Named unions must not collide on Key (the evaluator caches by it).
	ds := buildRandom(t, 100, 13)
	keys := map[string]bool{}
	err := EnumerateCellGroupings(ds, []int{0}, 100, func(pt *Partitioning) bool {
		for _, p := range pt.Parts {
			keys[p.Key()] = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Gender has 2 cells → groupings {c0}{c1} and {c0+c1} → 3 distinct
	// block keys.
	if len(keys) != 3 {
		t.Fatalf("%d distinct keys, want 3: %v", len(keys), keys)
	}
}

func TestNamedPartitionKeyAndLabel(t *testing.T) {
	p := &Partition{Name: "{c0+c3}", Indices: []int{0}}
	if p.Key() != "name:{c0+c3}" {
		t.Errorf("Key = %q", p.Key())
	}
	if p.Label(testSchema()) != "{c0+c3}" {
		t.Errorf("Label = %q", p.Label(testSchema()))
	}
}

func TestCountTreesMatchesEnumeration(t *testing.T) {
	if got := CountTrees([]int{2, 3}); got != 13 {
		t.Fatalf("CountTrees(2,3) = %v, want 13", got)
	}
	if got := CountTrees(nil); got != 1 {
		t.Fatalf("CountTrees() = %v, want 1", got)
	}
}

func TestCountTreesExplodes(t *testing.T) {
	// The paper's setting: 6 attributes with ≤5 values each. The count
	// must be astronomically large — the hardness argument.
	got := CountTrees([]int{2, 3, 5, 3, 4, 5})
	if !math.IsInf(got, 1) && got < 1e12 {
		t.Fatalf("paper-sized space suspiciously small: %v", got)
	}
}

func TestSplitObserve(t *testing.T) {
	ds := buildRandom(t, 200, 9)
	root := Root(ds)

	// The observe hook must see every row exactly once, under the value the
	// row lands in, in the parent's iteration order — and must not change
	// the children relative to a plain Split.
	var seen []int
	perValue := map[int]int{}
	observed := SplitObserve(ds, root, 1, func(value, row int) {
		if got := ds.Code(1, row); got != value {
			t.Fatalf("row %d observed under value %d, has code %d", row, value, got)
		}
		seen = append(seen, row)
		perValue[value]++
	})
	if len(seen) != root.Size() {
		t.Fatalf("observed %d rows, want %d", len(seen), root.Size())
	}
	for i, row := range seen {
		if row != root.Indices[i] {
			t.Fatalf("observation %d saw row %d, want parent order %d", i, row, root.Indices[i])
		}
	}
	plain := Split(ds, root, 1)
	if len(observed) != len(plain) {
		t.Fatalf("%d children with observer, %d without", len(observed), len(plain))
	}
	for i := range plain {
		if observed[i].Key() != plain[i].Key() {
			t.Errorf("child %d key %q != %q", i, observed[i].Key(), plain[i].Key())
		}
		if len(observed[i].Indices) != len(plain[i].Indices) {
			t.Errorf("child %d size %d != %d", i, len(observed[i].Indices), len(plain[i].Indices))
		}
		v := plain[i].Constraints[len(plain[i].Constraints)-1].Value
		if perValue[v] != len(plain[i].Indices) {
			t.Errorf("value %d observed %d times, child holds %d rows", v, perValue[v], len(plain[i].Indices))
		}
	}
}
