package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"fairrank/internal/simulate"
)

// Markdown renders an experiment result as a GitHub-flavored Markdown
// table, suitable for inclusion in EXPERIMENTS.md-style documents.
func Markdown(w io.Writer, res *simulate.Result) error {
	if res == nil || len(res.Rows) == 0 {
		return fmt.Errorf("report: empty experiment result")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %d workers, seed %d\n\n", res.Spec.Name, res.Spec.Workers, res.Spec.Seed)
	b.WriteString("| algorithm |")
	for _, c := range res.Rows[0].Cells {
		fmt.Fprintf(&b, " %s |", c.Function)
	}
	b.WriteString(" time |\n|---|")
	for range res.Rows[0].Cells {
		b.WriteString("---|")
	}
	b.WriteString("---|\n")
	for _, row := range res.Rows {
		fmt.Fprintf(&b, "| %s |", row.Algorithm)
		var total float64
		for _, c := range row.Cells {
			fmt.Fprintf(&b, " %.3f |", c.AvgDistance)
			total += c.Elapsed.Seconds()
		}
		fmt.Fprintf(&b, " %.2fs |\n", total)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// AggregateTable renders a multi-seed experiment as mean ± stddev per
// cell, in the paper's row/column layout.
func AggregateTable(w io.Writer, res *simulate.AggregateResult) error {
	if res == nil || len(res.Rows) == 0 {
		return fmt.Errorf("report: empty aggregate result")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d workers, %d seeds\n", res.Spec.Name, res.Spec.Workers, len(res.Seeds))
	fmt.Fprintf(&b, "%-15s", "Algorithm")
	for _, c := range res.Rows[0].Cells {
		fmt.Fprintf(&b, "  %-15s", c.Function+" EMD")
	}
	b.WriteString("  mean time\n")
	for _, row := range res.Rows {
		fmt.Fprintf(&b, "%-15s", row.Algorithm)
		var total time.Duration
		for _, c := range row.Cells {
			fmt.Fprintf(&b, "  %.3f ± %.3f  ", c.Mean, c.StdDev)
			total += c.MeanElapsed
		}
		fmt.Fprintf(&b, "  %s\n", formatDuration(total))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonResult is the machine-readable wire form of an experiment.
type jsonResult struct {
	Experiment string     `json:"experiment"`
	Workers    int        `json:"workers"`
	Seed       uint64     `json:"seed"`
	Rows       []jsonRow  `json:"rows"`
	Functions  []string   `json:"functions"`
	Matrix     []jsonCell `json:"cells"`
}

type jsonRow struct {
	Algorithm string `json:"algorithm"`
}

type jsonCell struct {
	Algorithm      string   `json:"algorithm"`
	Function       string   `json:"function"`
	AvgDistance    float64  `json:"avg_distance"`
	ElapsedSeconds float64  `json:"elapsed_seconds"`
	Partitions     int      `json:"partitions"`
	AttributesUsed []string `json:"attributes_used"`
}

// JSON writes the experiment result as a single JSON document.
func JSON(w io.Writer, res *simulate.Result) error {
	if res == nil || len(res.Rows) == 0 {
		return fmt.Errorf("report: empty experiment result")
	}
	out := jsonResult{
		Experiment: res.Spec.Name,
		Workers:    res.Spec.Workers,
		Seed:       res.Spec.Seed,
	}
	for _, c := range res.Rows[0].Cells {
		out.Functions = append(out.Functions, c.Function)
	}
	for _, row := range res.Rows {
		out.Rows = append(out.Rows, jsonRow{Algorithm: string(row.Algorithm)})
		for _, c := range row.Cells {
			out.Matrix = append(out.Matrix, jsonCell{
				Algorithm:      string(row.Algorithm),
				Function:       c.Function,
				AvgDistance:    c.AvgDistance,
				ElapsedSeconds: c.Elapsed.Seconds(),
				Partitions:     c.Partitions,
				AttributesUsed: c.AttributesUsed,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
