package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"fairrank/internal/core"
	"fairrank/internal/histogram"
	"fairrank/internal/partition"
)

// HistogramASCII renders a histogram as a horizontal bar chart, one line
// per bin, scaled so the fullest bin spans width characters.
func HistogramASCII(h *histogram.Histogram, width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := 0.0
	for i := 0; i < h.Bins(); i++ {
		if c := h.Count(i); c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i := 0; i < h.Bins(); i++ {
		lo := h.Min() + float64(i)*h.BinWidth()
		hi := lo + h.BinWidth()
		bar := 0
		if maxCount > 0 {
			bar = int(h.Count(i) / maxCount * float64(width))
		}
		fmt.Fprintf(&b, "[%4.2f,%4.2f) %-*s %g\n", lo, hi, width, strings.Repeat("#", bar), h.Count(i))
	}
	return b.String()
}

// Partitioning renders a Figure-1 style view of a partitioning: each
// partition's label, size, and score histogram, plus the overall average
// pairwise distance. Partitions are sorted by label for stable output.
func Partitioning(w io.Writer, e *core.Evaluator, pt *partition.Partitioning) error {
	if pt == nil || len(pt.Parts) == 0 {
		return fmt.Errorf("report: empty partitioning")
	}
	schema := e.Dataset().Schema()
	parts := make([]*partition.Partition, len(pt.Parts))
	copy(parts, pt.Parts)
	sort.Slice(parts, func(i, j int) bool {
		return parts[i].Label(schema) < parts[j].Label(schema)
	})
	var b strings.Builder
	fmt.Fprintf(&b, "unfairness(P, %s) = %.3f over %d partitions\n\n",
		e.Func().Name(), e.Unfairness(pt), len(parts))
	for _, p := range parts {
		fmt.Fprintf(&b, "%s (n=%d)\n", p.Label(schema), p.Size())
		b.WriteString(HistogramASCII(e.Histogram(p), 40))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Tree renders the splitting decisions of a Result as an indented trace —
// the partitioning tree the algorithm walked.
func Tree(w io.Writer, e *core.Evaluator, res *core.Result) error {
	if res == nil {
		return fmt.Errorf("report: nil result")
	}
	schema := e.Dataset().Schema()
	var b strings.Builder
	fmt.Fprintf(&b, "%s: unfairness %.3f, %d partitions, %s\n",
		res.Algorithm, res.Unfairness, res.Partitioning.Size(), res.Elapsed)
	for i, s := range res.Steps {
		verdict := "rejected (stop)"
		if s.Accepted {
			verdict = "accepted"
		}
		name := "-"
		if s.Attribute >= 0 && s.Attribute < len(schema.Protected) {
			name = schema.Protected[s.Attribute].Name
		}
		fmt.Fprintf(&b, "  step %d: split on %-16s → %4d partitions, avg %.3f  [%s]\n",
			i+1, name, s.Partitions, s.AvgDistance, verdict)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
