package report

import (
	"encoding/json"
	"strings"
	"testing"

	"fairrank/internal/simulate"
)

func TestMarkdownRendering(t *testing.T) {
	res := miniResult(t)
	var b strings.Builder
	if err := Markdown(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### mini — 80 workers", "| algorithm |", "| balanced |", "| all-attributes |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Valid markdown table: header separator row present.
	if !strings.Contains(out, "|---|") {
		t.Error("separator row missing")
	}
}

func TestMarkdownEmpty(t *testing.T) {
	var b strings.Builder
	if err := Markdown(&b, nil); err == nil {
		t.Error("nil result accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	res := miniResult(t)
	var b strings.Builder
	if err := JSON(&b, res); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["experiment"] != "mini" {
		t.Errorf("experiment = %v", decoded["experiment"])
	}
	cells, ok := decoded["cells"].([]any)
	if !ok || len(cells) != 4 { // 2 algorithms × 2 functions
		t.Fatalf("cells = %v", decoded["cells"])
	}
	first := cells[0].(map[string]any)
	for _, key := range []string{"algorithm", "function", "avg_distance", "elapsed_seconds", "partitions"} {
		if _, ok := first[key]; !ok {
			t.Errorf("cell missing key %q", key)
		}
	}
}

func TestAggregateTable(t *testing.T) {
	funcs, err := simulate.RandomFunctions()
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulate.RunSeeds(simulate.Spec{
		Name: "agg", Workers: 60, Funcs: funcs[:1],
		Algorithms: []simulate.AlgorithmID{simulate.AlgoBalanced},
	}, []uint64{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := AggregateTable(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"2 seeds", "±", "balanced", "f1 EMD"} {
		if !strings.Contains(out, want) {
			t.Errorf("aggregate table missing %q:\n%s", want, out)
		}
	}
	if err := AggregateTable(&b, nil); err == nil {
		t.Error("nil aggregate accepted")
	}
}

func TestJSONEmpty(t *testing.T) {
	var b strings.Builder
	if err := JSON(&b, nil); err == nil {
		t.Error("nil result accepted")
	}
}
