// Package report renders experiment results in the shapes the paper uses:
// the algorithm × function tables of average pairwise EMD and runtime
// (Tables 1–3), and Figure-1 style partitioning views with per-partition
// ASCII score histograms.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"fairrank/internal/simulate"
)

// Table renders an experiment result as a fixed-width text table in the
// paper's layout: one row per algorithm, one "Avg EMD" column block and one
// "time" column block per scoring function.
func Table(w io.Writer, res *simulate.Result) error {
	if res == nil || len(res.Rows) == 0 {
		return fmt.Errorf("report: empty experiment result")
	}
	funcs := make([]string, 0, len(res.Rows[0].Cells))
	for _, c := range res.Rows[0].Cells {
		funcs = append(funcs, c.Function)
	}

	header := []string{"Algorithm"}
	for _, f := range funcs {
		header = append(header, f+" EMD")
	}
	for _, f := range funcs {
		header = append(header, f+" time")
	}

	rows := [][]string{header}
	for _, row := range res.Rows {
		line := []string{string(row.Algorithm)}
		for _, c := range row.Cells {
			line = append(line, fmt.Sprintf("%.3f", c.AvgDistance))
		}
		for _, c := range row.Cells {
			line = append(line, formatDuration(c.Elapsed))
		}
		rows = append(rows, line)
	}

	widths := make([]int, len(header))
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d workers, seed %d\n", res.Spec.Name, res.Spec.Workers, res.Spec.Seed)
	for ri, r := range rows {
		for i, cell := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, wd := range widths {
				total += wd + 2
			}
			b.WriteString(strings.Repeat("-", total-2))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// CSV writes the experiment result as machine-readable CSV with one row per
// (algorithm, function) cell.
func CSV(w io.Writer, res *simulate.Result) error {
	if res == nil || len(res.Rows) == 0 {
		return fmt.Errorf("report: empty experiment result")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"experiment", "workers", "seed", "algorithm", "function",
		"avg_distance", "elapsed_seconds", "partitions", "attributes_used",
	}); err != nil {
		return err
	}
	for _, row := range res.Rows {
		for _, c := range row.Cells {
			rec := []string{
				res.Spec.Name,
				strconv.Itoa(res.Spec.Workers),
				strconv.FormatUint(res.Spec.Seed, 10),
				string(row.Algorithm),
				c.Function,
				strconv.FormatFloat(c.AvgDistance, 'f', 6, 64),
				strconv.FormatFloat(c.Elapsed.Seconds(), 'f', 6, 64),
				strconv.Itoa(c.Partitions),
				strings.Join(c.AttributesUsed, "+"),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
