package report

import (
	"context"
	"encoding/csv"
	"strings"
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/histogram"
	"fairrank/internal/partition"
	"fairrank/internal/simulate"
)

func miniResult(t *testing.T) *simulate.Result {
	t.Helper()
	funcs, err := simulate.RandomFunctions()
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulate.Run(simulate.Spec{
		Name: "mini", Workers: 80, Seed: 1, Funcs: funcs[:2],
		Algorithms: []simulate.AlgorithmID{simulate.AlgoBalanced, simulate.AlgoAllAttributes},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTableRendering(t *testing.T) {
	res := miniResult(t)
	var b strings.Builder
	if err := Table(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Algorithm", "balanced", "all-attributes", "f1 EMD", "f2 time", "80 workers"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTableEmpty(t *testing.T) {
	var b strings.Builder
	if err := Table(&b, nil); err == nil {
		t.Error("nil result accepted")
	}
	if err := Table(&b, &simulate.Result{}); err == nil {
		t.Error("empty result accepted")
	}
}

func TestCSVRendering(t *testing.T) {
	res := miniResult(t)
	var b strings.Builder
	if err := CSV(&b, res); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 2 algorithms × 2 functions
	if len(records) != 5 {
		t.Fatalf("%d csv rows, want 5", len(records))
	}
	if records[0][0] != "experiment" || len(records[0]) != 9 {
		t.Fatalf("header = %v", records[0])
	}
}

func TestCSVEmpty(t *testing.T) {
	var b strings.Builder
	if err := CSV(&b, nil); err == nil {
		t.Error("nil result accepted")
	}
}

func TestHistogramASCII(t *testing.T) {
	h := histogram.MustNew(4, 0, 1)
	h.AddAll([]float64{0.1, 0.1, 0.9})
	out := HistogramASCII(h, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4", len(lines))
	}
	if !strings.Contains(lines[0], "##########") {
		t.Errorf("fullest bin not full-width: %q", lines[0])
	}
	if strings.Contains(lines[1], "#") {
		t.Errorf("empty bin has bars: %q", lines[1])
	}
	// Degenerate width falls back to default.
	if out := HistogramASCII(h, 0); !strings.Contains(out, "#") {
		t.Error("zero width produced no bars")
	}
}

func TestHistogramASCIIEmpty(t *testing.T) {
	h := histogram.MustNew(3, 0, 1)
	out := HistogramASCII(h, 10)
	if strings.Contains(out, "#") {
		t.Errorf("empty histogram has bars:\n%s", out)
	}
}

func TestPartitioningFigure(t *testing.T) {
	res := miniResult(t)
	ds := res.Dataset
	funcs, _ := simulate.RandomFunctions()
	e, err := core.NewEvaluator(ds, funcs[0], core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	parts := partition.Split(ds, partition.Root(ds), 0)
	pt := &partition.Partitioning{Parts: parts}
	var b strings.Builder
	if err := Partitioning(&b, e, pt); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "unfairness(P, f1)") || !strings.Contains(out, "Gender=") {
		t.Errorf("figure output:\n%s", out)
	}
	if err := Partitioning(&b, e, nil); err == nil {
		t.Error("nil partitioning accepted")
	}
}

func TestTreeRendering(t *testing.T) {
	res := miniResult(t)
	funcs, _ := simulate.RandomFunctions()
	e, err := core.NewEvaluator(res.Dataset, funcs[0], core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.Run(context.Background(), core.Spec{Evaluator: e})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Tree(&b, e, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "balanced") || !strings.Contains(out, "step 1") {
		t.Errorf("tree output:\n%s", out)
	}
	if err := Tree(&b, e, nil); err == nil {
		t.Error("nil result accepted")
	}
}
