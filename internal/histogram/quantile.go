package histogram

import (
	"errors"
	"math"
	"sort"
)

// QuantileEdges computes equal-frequency (quantile) bin edges for the given
// values. It returns bins+1 edges; the first is the minimum value and the
// last the maximum. Duplicate edges caused by heavy ties are deduplicated,
// so the returned slice may describe fewer bins than requested.
//
// Equal-width binning is what the paper uses; quantile binning is provided
// as an alternative for heavily skewed scoring functions.
func QuantileEdges(values []float64, bins int) ([]float64, error) {
	if bins < 1 {
		return nil, ErrBadBins
	}
	if len(values) == 0 {
		return nil, errors.New("histogram: no values for quantile edges")
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)

	edges := make([]float64, 0, bins+1)
	edges = append(edges, sorted[0])
	for i := 1; i < bins; i++ {
		q := float64(i) / float64(bins)
		idx := int(q * float64(len(sorted)-1))
		e := sorted[idx]
		if e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	if sorted[len(sorted)-1] > edges[len(edges)-1] {
		edges = append(edges, sorted[len(sorted)-1])
	}
	if len(edges) < 2 {
		// All values identical: synthesize a tiny non-empty range.
		edges = append(edges, edges[0]+1)
	}
	return edges, nil
}

// Irregular is a histogram over arbitrary (sorted, strictly increasing) bin
// edges. It supports the same PMF/CDF operations as Histogram and exists to
// back quantile binning.
type Irregular struct {
	edges  []float64
	counts []float64
	total  float64
}

// NewIrregular builds an irregular histogram from bin edges. len(edges)
// must be >= 2 and edges must be strictly increasing.
func NewIrregular(edges []float64) (*Irregular, error) {
	if len(edges) < 2 {
		return nil, errors.New("histogram: need at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			return nil, errors.New("histogram: edges must be strictly increasing")
		}
	}
	e := make([]float64, len(edges))
	copy(e, edges)
	return &Irregular{edges: e, counts: make([]float64, len(edges)-1)}, nil
}

// Bins returns the number of bins.
func (h *Irregular) Bins() int { return len(h.counts) }

// Total returns the total recorded mass.
func (h *Irregular) Total() float64 { return h.total }

// BinIndex locates the bin for v, clamping out-of-range values. NaN maps to
// bin 0, mirroring Histogram.BinIndex; without the explicit check it falls
// through every ordered comparison and SearchFloat64s walks off the edge
// slice (found by fuzzing, corpus entry under testdata/fuzz/FuzzIrregular).
func (h *Irregular) BinIndex(v float64) int {
	if math.IsNaN(v) || v <= h.edges[0] {
		return 0
	}
	if v >= h.edges[len(h.edges)-1] {
		return len(h.counts) - 1
	}
	// sort.SearchFloat64s finds the first edge > v when we search v; bins
	// are [edges[i], edges[i+1]).
	i := sort.SearchFloat64s(h.edges, v)
	if i > 0 && h.edges[i] != v {
		i--
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// Add records one observation.
func (h *Irregular) Add(v float64) {
	h.counts[h.BinIndex(v)]++
	h.total++
}

// BinCenter returns the midpoint of bin i.
func (h *Irregular) BinCenter(i int) float64 {
	return (h.edges[i] + h.edges[i+1]) / 2
}

// PMF returns normalized masses; uniform when empty (see Histogram.PMF).
func (h *Irregular) PMF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		u := 1 / float64(len(h.counts))
		for i := range out {
			out[i] = u
		}
		return out
	}
	for i, c := range h.counts {
		out[i] = c / h.total
	}
	return out
}
