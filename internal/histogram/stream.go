package histogram

import (
	"math"
	"sort"
)

// Stream is a streaming histogram sketch after Ben-Haim & Tom-Tov ("A
// Streaming Parallel Decision Tree Algorithm", JMLR 2010). It maintains at
// most maxCentroids (value, count) centroids and merges the closest pair
// when it overflows. It is used when the score range is not known up front,
// e.g. when auditing an arbitrary user-supplied scoring function: the sketch
// is built in one pass and then materialized into a fixed-bin Histogram.
type Stream struct {
	maxCentroids int
	centroids    []centroid // kept sorted by value
	total        float64
	min, max     float64
}

type centroid struct {
	value float64
	count float64
}

// NewStream returns a streaming sketch holding at most maxCentroids
// centroids. maxCentroids must be >= 2.
func NewStream(maxCentroids int) *Stream {
	if maxCentroids < 2 {
		maxCentroids = 2
	}
	return &Stream{
		maxCentroids: maxCentroids,
		min:          math.Inf(1),
		max:          math.Inf(-1),
	}
}

// Add records one observation.
func (s *Stream) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.total++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	i := sort.Search(len(s.centroids), func(i int) bool { return s.centroids[i].value >= v })
	if i < len(s.centroids) && s.centroids[i].value == v {
		s.centroids[i].count++
		return
	}
	s.centroids = append(s.centroids, centroid{})
	copy(s.centroids[i+1:], s.centroids[i:])
	s.centroids[i] = centroid{value: v, count: 1}
	if len(s.centroids) > s.maxCentroids {
		s.mergeClosest()
	}
}

func (s *Stream) mergeClosest() {
	best := 0
	bestGap := math.Inf(1)
	for i := 0; i+1 < len(s.centroids); i++ {
		gap := s.centroids[i+1].value - s.centroids[i].value
		if gap < bestGap {
			bestGap = gap
			best = i
		}
	}
	a, b := s.centroids[best], s.centroids[best+1]
	merged := centroid{
		value: (a.value*a.count + b.value*b.count) / (a.count + b.count),
		count: a.count + b.count,
	}
	s.centroids[best] = merged
	s.centroids = append(s.centroids[:best+1], s.centroids[best+2:]...)
}

// Total returns the number of observations recorded.
func (s *Stream) Total() float64 { return s.total }

// Range returns the observed min and max. Both are infinities when empty.
func (s *Stream) Range() (min, max float64) { return s.min, s.max }

// Materialize converts the sketch into a fixed-bin Histogram over the
// observed range (or [0,1] when empty/degenerate). Each centroid's mass is
// deposited at its mean value.
func (s *Stream) Materialize(bins int) *Histogram {
	lo, hi := s.min, s.max
	if !(hi > lo) {
		lo, hi = 0, 1
		if s.total > 0 {
			// Single distinct value: center a unit-wide range on it.
			lo, hi = s.min-0.5, s.min+0.5
		}
	}
	h := MustNew(bins, lo, hi)
	for _, c := range s.centroids {
		h.AddWeighted(c.value, c.count)
	}
	return h
}

// Merge folds another sketch into s.
func (s *Stream) Merge(o *Stream) {
	for _, c := range o.centroids {
		// Weighted insertion: replay the centroid as a single weighted point.
		s.addWeighted(c.value, c.count)
	}
}

func (s *Stream) addWeighted(v, w float64) {
	if w <= 0 || math.IsNaN(v) {
		return
	}
	s.total += w
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	i := sort.Search(len(s.centroids), func(i int) bool { return s.centroids[i].value >= v })
	if i < len(s.centroids) && s.centroids[i].value == v {
		s.centroids[i].count += w
		return
	}
	s.centroids = append(s.centroids, centroid{})
	copy(s.centroids[i+1:], s.centroids[i:])
	s.centroids[i] = centroid{value: v, count: w}
	if len(s.centroids) > s.maxCentroids {
		s.mergeClosest()
	}
}
