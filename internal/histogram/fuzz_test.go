package histogram

import (
	"math"
	"testing"

	"fairrank/internal/testkit"
)

// FuzzHistogram feeds arbitrary byte-decoded values — including NaN, ±Inf
// and out-of-range magnitudes via SpecialFloats — through both histogram
// implementations. Neither may panic; Histogram must agree with the oracle's
// branchy counting bin-for-bin and must never lose mass; Irregular must
// clamp NaN to bin 0 (the committed "\xff" seed is the reproducer for the
// SearchFloat64s out-of-range panic this suite caught).
func FuzzHistogram(f *testing.F) {
	f.Add([]byte{8, 10, 20, 30, 100, 200, 250})
	f.Add([]byte{4, 255})           // NaN: Irregular.Add used to panic
	f.Add([]byte{6, 254, 253, 252}) // ±Inf and below-range
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		bins := int(data[0])%20 + 1
		vals := testkit.SpecialFloats(data[1:])

		h := MustNew(bins, 0, 1)
		h.AddAll(vals)
		if h.Total() != float64(len(vals)) {
			t.Fatalf("total = %v, added %d values", h.Total(), len(vals))
		}
		var o testkit.Oracle
		want := o.Counts(vals, bins, 0, 1)
		for i, c := range h.Counts() {
			if c != want[i] {
				t.Fatalf("bin %d: count %v, oracle %v (vals=%v)", i, c, want[i], vals)
			}
		}

		edges := make([]float64, bins+1)
		for i := range edges {
			edges[i] = float64(i) / float64(bins)
		}
		irr, err := NewIrregular(edges)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			irr.Add(v) // must not panic for any input
			if math.IsNaN(v) && irr.BinIndex(v) != 0 {
				t.Fatalf("NaN bin = %d, want 0", irr.BinIndex(v))
			}
		}
		if irr.Total() != float64(len(vals)) {
			t.Fatalf("irregular total = %v, added %d values", irr.Total(), len(vals))
		}
	})
}
