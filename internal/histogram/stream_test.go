package histogram

import (
	"math"
	"testing"

	"fairrank/internal/rng"
)

func TestStreamExactWhenSmall(t *testing.T) {
	s := NewStream(100)
	vals := []float64{0.1, 0.2, 0.3, 0.2}
	for _, v := range vals {
		s.Add(v)
	}
	if s.Total() != 4 {
		t.Fatalf("Total = %v", s.Total())
	}
	min, max := s.Range()
	if min != 0.1 || max != 0.3 {
		t.Fatalf("Range = %v,%v", min, max)
	}
}

func TestStreamCapsCentroids(t *testing.T) {
	s := NewStream(8)
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		s.Add(r.Float64())
	}
	if len(s.centroids) > 8 {
		t.Fatalf("%d centroids, cap 8", len(s.centroids))
	}
	if s.Total() != 10000 {
		t.Fatalf("Total = %v", s.Total())
	}
}

func TestStreamIgnoresNaN(t *testing.T) {
	s := NewStream(8)
	s.Add(math.NaN())
	if s.Total() != 0 {
		t.Fatal("NaN was recorded")
	}
}

func TestStreamMaterializePreservesMassAndShape(t *testing.T) {
	s := NewStream(64)
	r := rng.New(2)
	const n = 50000
	for i := 0; i < n; i++ {
		s.Add(r.Float64())
	}
	h := s.Materialize(10)
	if math.Abs(h.Total()-n) > 1e-6 {
		t.Fatalf("materialized total = %v, want %d", h.Total(), n)
	}
	// Uniform input: each of 10 bins should hold roughly n/10.
	for i := 0; i < 10; i++ {
		if math.Abs(h.Count(i)-n/10) > 0.15*n/10 {
			t.Errorf("bin %d mass %v, want ~%v", i, h.Count(i), n/10)
		}
	}
}

func TestStreamMaterializeEmpty(t *testing.T) {
	h := NewStream(8).Materialize(5)
	if !h.Empty() || h.Bins() != 5 {
		t.Fatalf("empty materialize: total=%v bins=%d", h.Total(), h.Bins())
	}
}

func TestStreamMaterializeSingleValue(t *testing.T) {
	s := NewStream(8)
	s.Add(0.7)
	s.Add(0.7)
	h := s.Materialize(4)
	if h.Total() != 2 {
		t.Fatalf("total = %v", h.Total())
	}
	if !(h.Max() > h.Min()) {
		t.Fatalf("degenerate range [%v,%v]", h.Min(), h.Max())
	}
}

func TestStreamMerge(t *testing.T) {
	a, b := NewStream(32), NewStream(32)
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		a.Add(r.Float64())
		b.Add(r.Float64() + 1)
	}
	a.Merge(b)
	if a.Total() != 200 {
		t.Fatalf("merged total = %v", a.Total())
	}
	min, max := a.Range()
	if min >= 1 || max < 1 {
		t.Fatalf("merged range = [%v,%v]", min, max)
	}
}

func TestStreamTinyCapClamped(t *testing.T) {
	s := NewStream(1) // clamped to 2
	for i := 0; i < 10; i++ {
		s.Add(float64(i))
	}
	if len(s.centroids) > 2 {
		t.Fatalf("cap not clamped: %d centroids", len(s.centroids))
	}
	if s.Total() != 10 {
		t.Fatalf("total = %v", s.Total())
	}
}
