package histogram

import (
	"math"
	"testing"

	"fairrank/internal/rng"
)

func TestQuantileEdgesValidation(t *testing.T) {
	if _, err := QuantileEdges([]float64{1, 2}, 0); err == nil {
		t.Error("bins=0 accepted")
	}
	if _, err := QuantileEdges(nil, 4); err == nil {
		t.Error("empty values accepted")
	}
}

func TestQuantileEdgesUniform(t *testing.T) {
	r := rng.New(1)
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = r.Float64()
	}
	edges, err := QuantileEdges(vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 5 {
		t.Fatalf("got %d edges, want 5", len(edges))
	}
	// Quartile edges of uniform data should be near 0.25, 0.5, 0.75.
	for i, want := range []float64{0.25, 0.5, 0.75} {
		if math.Abs(edges[i+1]-want) > 0.03 {
			t.Errorf("edge %d = %v, want ~%v", i+1, edges[i+1], want)
		}
	}
}

func TestQuantileEdgesAllEqual(t *testing.T) {
	edges, err := QuantileEdges([]float64{3, 3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) < 2 {
		t.Fatalf("degenerate edges: %v", edges)
	}
	if !(edges[len(edges)-1] > edges[0]) {
		t.Fatalf("edges not increasing: %v", edges)
	}
}

func TestNewIrregularValidation(t *testing.T) {
	if _, err := NewIrregular([]float64{1}); err == nil {
		t.Error("single edge accepted")
	}
	if _, err := NewIrregular([]float64{1, 1}); err == nil {
		t.Error("non-increasing edges accepted")
	}
	if _, err := NewIrregular([]float64{2, 1}); err == nil {
		t.Error("decreasing edges accepted")
	}
}

func TestIrregularBinIndex(t *testing.T) {
	h, err := NewIrregular([]float64{0, 1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 0}, {0, 0}, {0.5, 0}, {1, 1}, {5, 1}, {10, 2}, {50, 2}, {100, 2}, {1000, 2},
	}
	for _, c := range cases {
		if got := h.BinIndex(c.v); got != c.want {
			t.Errorf("BinIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestIrregularAddPMF(t *testing.T) {
	h, _ := NewIrregular([]float64{0, 1, 2})
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	pmf := h.PMF()
	if math.Abs(pmf[0]-1.0/3) > 1e-12 || math.Abs(pmf[1]-2.0/3) > 1e-12 {
		t.Fatalf("PMF = %v", pmf)
	}
	if h.Bins() != 2 || h.Total() != 3 {
		t.Fatalf("Bins=%d Total=%v", h.Bins(), h.Total())
	}
	if c := h.BinCenter(0); c != 0.5 {
		t.Fatalf("BinCenter(0)=%v", c)
	}
}

func TestIrregularEmptyPMFUniform(t *testing.T) {
	h, _ := NewIrregular([]float64{0, 1, 2, 3})
	for _, p := range h.PMF() {
		if math.Abs(p-1.0/3) > 1e-12 {
			t.Fatalf("empty irregular PMF = %v", h.PMF())
		}
	}
}
