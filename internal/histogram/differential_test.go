package histogram

import (
	"math"
	"testing"

	"fairrank/internal/testkit"
)

// Differential tests: the precomputed-width/scatter histogram paths against
// the oracle's one-branchy-pass counting, over generated inputs including
// the non-finite specials the public Add contract must clamp.

func TestHistogramMatchesOracleCounts(t *testing.T) {
	var o testkit.Oracle
	for seed := uint64(1); seed <= 200; seed++ {
		g := testkit.NewGen(seed)
		bins := g.R.IntRange(1, 30)
		n := g.R.IntRange(0, 300)
		vals := make([]float64, n)
		for i := range vals {
			// Mostly in-range, some below/above to exercise clamping.
			vals[i] = g.R.FloatRange(-0.3, 1.3)
		}
		h := MustNew(bins, 0, 1)
		h.AddAll(vals)
		want := o.Counts(vals, bins, 0, 1)
		got := h.Counts()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d bin %d: count %v, oracle %v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestHistogramSpecialValuesMatchOracle(t *testing.T) {
	var o testkit.Oracle
	for seed := uint64(1); seed <= 100; seed++ {
		g := testkit.NewGen(seed)
		raw := make([]byte, g.R.IntRange(0, 64))
		for i := range raw {
			raw[i] = byte(g.R.Intn(256))
		}
		vals := testkit.SpecialFloats(raw)
		// Infinities clamp to edge bins like any out-of-range value; NaN to 0.
		h := MustNew(10, 0, 1)
		h.AddAll(vals)
		want := o.Counts(vals, 10, 0, 1)
		got := h.Counts()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d bin %d: count %v, oracle %v (vals %v)", seed, i, got[i], want[i], vals)
			}
		}
	}
}

func TestNormalizeCountsMatchesOraclePMF(t *testing.T) {
	var o testkit.Oracle
	for seed := uint64(1); seed <= 100; seed++ {
		g := testkit.NewGen(seed)
		bins := g.R.IntRange(1, 20)
		counts := make([]float64, bins)
		if g.R.Intn(5) > 0 { // leave 1 in 5 rows all-zero
			for i := range counts {
				counts[i] = float64(g.R.Intn(20))
			}
		}
		got := NormalizeCounts(counts)
		want := o.PMF(counts)
		for i := range want {
			if math.Abs(got[i]-want[i]) > testkit.Tol {
				t.Fatalf("seed %d bin %d: %v, oracle %v", seed, i, got[i], want[i])
			}
		}
	}
}

// Merge-then-split identity: histogramming a population in one pass equals
// histogramming two halves and merging — the invariant the engine's
// single-pass SplitObserve scatter depends on.
func TestMergeEqualsSinglePass(t *testing.T) {
	for seed := uint64(1); seed <= 100; seed++ {
		g := testkit.NewGen(seed)
		bins := g.R.IntRange(1, 25)
		vals := g.Scores(g.R.IntRange(2, 200))
		cut := g.R.IntRange(1, len(vals)-1)

		whole := MustNew(bins, 0, 1)
		whole.AddAll(vals)

		left := MustNew(bins, 0, 1)
		left.AddAll(vals[:cut])
		right := MustNew(bins, 0, 1)
		right.AddAll(vals[cut:])
		if err := left.Merge(right); err != nil {
			t.Fatalf("seed %d: merge: %v", seed, err)
		}

		for i := 0; i < bins; i++ {
			if left.Count(i) != whole.Count(i) {
				t.Fatalf("seed %d bin %d: merged %v, single-pass %v", seed, i, left.Count(i), whole.Count(i))
			}
		}
	}
}

// Regression: int(math.Floor(+Inf)) overflows to a negative int, so
// BinIndex(+Inf) used to clamp low instead of high. At-or-above-max values,
// infinite or just astronomically large, belong in the last bin.
func TestBinIndexInfinityClampsHigh(t *testing.T) {
	h := MustNew(8, 0, 1)
	if got := h.BinIndex(math.Inf(1)); got != 7 {
		t.Fatalf("BinIndex(+Inf) = %d, want 7", got)
	}
	if got := h.BinIndex(1e300); got != 7 {
		t.Fatalf("BinIndex(1e300) = %d, want 7", got)
	}
	if got := h.BinIndex(math.Inf(-1)); got != 0 {
		t.Fatalf("BinIndex(-Inf) = %d, want 0", got)
	}
	if got := h.BinIndex(-1e300); got != 0 {
		t.Fatalf("BinIndex(-1e300) = %d, want 0", got)
	}
}

// Regression: Irregular.Add(NaN) used to walk SearchFloat64s off the edge
// slice and panic with an index out of range. NaN must clamp to bin 0 the
// way Histogram.BinIndex does.
func TestIrregularNaNClampsToFirstBin(t *testing.T) {
	h, err := NewIrregular([]float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	h.Add(math.NaN())
	if h.BinIndex(math.NaN()) != 0 {
		t.Fatalf("NaN bin = %d, want 0", h.BinIndex(math.NaN()))
	}
	if got := h.PMF()[0]; got != 1 {
		t.Fatalf("PMF after NaN add = %v, want mass in bin 0", h.PMF())
	}
}

// Irregular with equal-width edges must agree with Histogram bin-for-bin on
// clamped out-of-range and special values. Values lying exactly on an
// interior edge double are excluded: Irregular compares against the edge
// while Histogram divides by an inexact width, so the two can legitimately
// disagree by one bin there (e.g. 0.6 vs edges of 1/5-wide bins).
func TestIrregularMatchesRegularOnUniformEdges(t *testing.T) {
	for seed := uint64(1); seed <= 100; seed++ {
		g := testkit.NewGen(seed)
		bins := g.R.IntRange(1, 20)
		edges := make([]float64, bins+1)
		onEdge := map[float64]bool{}
		for i := range edges {
			edges[i] = float64(i) / float64(bins)
			if i > 0 && i < bins {
				onEdge[edges[i]] = true
			}
		}
		irr, err := NewIrregular(edges)
		if err != nil {
			t.Fatal(err)
		}
		reg := MustNew(bins, 0, 1)
		raw := make([]byte, g.R.IntRange(1, 80))
		for i := range raw {
			raw[i] = byte(g.R.Intn(256))
		}
		for _, v := range testkit.SpecialFloats(raw) {
			if onEdge[v] {
				continue
			}
			irr.Add(v)
			reg.Add(v)
		}
		ip, rp := irr.PMF(), reg.PMF()
		for i := range rp {
			if math.Abs(ip[i]-rp[i]) > testkit.Tol {
				t.Fatalf("seed %d bin %d: irregular %v, regular %v", seed, i, ip[i], rp[i])
			}
		}
	}
}
