// Package histogram implements the score-distribution histograms that
// fairrank compares with Earth Mover's Distance.
//
// The paper builds, for every partition of the workers, "a histogram ...
// based on the function scores by creating equal bins over the range of f
// and counting the number of workers whose function values f(w) fall in
// each bin". Histogram implements exactly that, plus normalization, merging
// and the cumulative view used by the closed-form 1-D EMD.
package histogram

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over the closed interval [Min, Max].
// Values outside the range are clamped to the first or last bin, which is
// convenient for scores that are nominally in [0,1] but may touch the
// endpoints exactly.
type Histogram struct {
	min, max float64
	counts   []float64
	total    float64
}

// ErrBadRange is returned when max <= min.
var ErrBadRange = errors.New("histogram: max must be greater than min")

// ErrBadBins is returned when the requested number of bins is < 1.
var ErrBadBins = errors.New("histogram: need at least one bin")

// New returns an empty histogram with the given number of equal-width bins
// over [min, max].
func New(bins int, min, max float64) (*Histogram, error) {
	if bins < 1 {
		return nil, ErrBadBins
	}
	if !(max > min) {
		return nil, ErrBadRange
	}
	return &Histogram{min: min, max: max, counts: make([]float64, bins)}, nil
}

// MustNew is New but panics on error; for statically-correct construction.
func MustNew(bins int, min, max float64) *Histogram {
	h, err := New(bins, min, max)
	if err != nil {
		panic(err)
	}
	return h
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Min returns the lower bound of the histogram range.
func (h *Histogram) Min() float64 { return h.min }

// Max returns the upper bound of the histogram range.
func (h *Histogram) Max() float64 { return h.max }

// BinWidth returns the width of each bin in value units.
func (h *Histogram) BinWidth() float64 { return (h.max - h.min) / float64(len(h.counts)) }

// BinIndex returns the index of the bin that value v falls into. Values
// below Min map to bin 0; values at or above Max map to the last bin.
func (h *Histogram) BinIndex(v float64) int {
	if math.IsNaN(v) {
		return 0
	}
	// Clamp in float space: converting an out-of-range float (e.g. from
	// v = +Inf or a huge finite score) straight to int overflows to a
	// negative value and used to send +Inf to bin 0 instead of the last bin.
	f := math.Floor((v - h.min) / h.BinWidth())
	if f < 0 {
		return 0
	}
	if f >= float64(len(h.counts)) {
		return len(h.counts) - 1
	}
	return int(f)
}

// BinIndices maps every value in vs to its bin index under h's binning in
// one pass, using exactly the BinIndex clamping rules. Scatter paths use
// this to pre-bin a score column once and then bucket observations with
// pure integer arithmetic, instead of re-deriving the bin per pass.
func (h *Histogram) BinIndices(vs []float64) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = h.BinIndex(v)
	}
	return out
}

// NormalizeCounts converts one raw count row — as accumulated by a
// single-pass scatter split — into the PMF that a Histogram holding the
// same counts would return: counts/total, or uniform when the row holds
// no mass. Shared so scatter-built child PMFs are bit-identical to
// Histogram.PMF.
func NormalizeCounts(counts []float64) []float64 {
	out := make([]float64, len(counts))
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		u := 1 / float64(len(counts))
		for i := range out {
			out[i] = u
		}
		return out
	}
	for i, c := range counts {
		out[i] = c / total
	}
	return out
}

// BinCenter returns the value at the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.min + (float64(i)+0.5)*h.BinWidth()
}

// Add records one observation of value v with weight 1.
func (h *Histogram) Add(v float64) { h.AddWeighted(v, 1) }

// AddWeighted records one observation of value v with the given weight.
// Negative weights are rejected.
func (h *Histogram) AddWeighted(v, weight float64) {
	if weight < 0 || math.IsNaN(weight) {
		panic(fmt.Sprintf("histogram: invalid weight %v", weight))
	}
	h.counts[h.BinIndex(v)] += weight
	h.total += weight
}

// AddAll records every value in vs.
func (h *Histogram) AddAll(vs []float64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// Remove deletes one previously recorded observation of value v. It
// returns an error if the bin holding v is already empty, which indicates
// the caller is removing a value that was never added (bookkeeping bug).
func (h *Histogram) Remove(v float64) error {
	i := h.BinIndex(v)
	if h.counts[i] < 1 {
		return fmt.Errorf("histogram: removing %v from empty bin %d", v, i)
	}
	h.counts[i]--
	h.total--
	return nil
}

// Count returns the (possibly weighted) count in bin i.
func (h *Histogram) Count(i int) float64 { return h.counts[i] }

// Counts returns a copy of the raw bin counts.
func (h *Histogram) Counts() []float64 {
	out := make([]float64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Total returns the total mass (sum of all bin counts).
func (h *Histogram) Total() float64 { return h.total }

// Empty reports whether the histogram holds no mass.
func (h *Histogram) Empty() bool { return h.total == 0 }

// PMF returns the normalized bin masses (summing to 1). If the histogram is
// empty it returns a uniform distribution, which makes distance computations
// against empty partitions well defined without special-casing callers.
func (h *Histogram) PMF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		u := 1 / float64(len(h.counts))
		for i := range out {
			out[i] = u
		}
		return out
	}
	for i, c := range h.counts {
		out[i] = c / h.total
	}
	return out
}

// CDF returns the cumulative normalized masses; CDF()[Bins()-1] == 1 for a
// non-empty histogram (up to rounding).
func (h *Histogram) CDF() []float64 {
	pmf := h.PMF()
	cum := 0.0
	for i, p := range pmf {
		cum += p
		pmf[i] = cum
	}
	return pmf
}

// FixedCDF returns the cumulative normalized masses quantized onto an
// integer grid of the given scale: out[i] = round(scale·CDF()[i]). This is
// the histogram-side entry point for the fixed-point EMD bound kernels in
// internal/emd; quantizing once at construction time keeps the kernels'
// inner loops pure integer arithmetic. scale must be ≥ 1.
func (h *Histogram) FixedCDF(scale int64) []int64 {
	if scale < 1 {
		panic(ErrBadScale)
	}
	out := make([]int64, len(h.counts))
	if h.total == 0 {
		// Mirror PMF's uniform-on-empty convention.
		u := 1 / float64(len(h.counts))
		cum := 0.0
		for i := range out {
			cum += u
			out[i] = int64(math.RoundToEven(cum * float64(scale)))
		}
		return out
	}
	cum := 0.0
	for i, c := range h.counts {
		cum += c / h.total
		out[i] = int64(math.RoundToEven(cum * float64(scale)))
	}
	return out
}

// ErrBadScale is the panic value of FixedCDF for scales < 1.
var ErrBadScale = errors.New("histogram: fixed-point scale must be >= 1")

// Mean returns the mass-weighted mean of bin centers, or NaN when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	s := 0.0
	for i, c := range h.counts {
		s += c * h.BinCenter(i)
	}
	return s / h.total
}

// Variance returns the mass-weighted variance of bin centers, or NaN when
// empty.
func (h *Histogram) Variance() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	m := h.Mean()
	s := 0.0
	for i, c := range h.counts {
		d := h.BinCenter(i) - m
		s += c * d * d
	}
	return s / h.total
}

// Clone returns a deep copy of h.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{min: h.min, max: h.max, total: h.total, counts: make([]float64, len(h.counts))}
	copy(c.counts, h.counts)
	return c
}

// Reset removes all mass, keeping the binning.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
}

// Compatible reports whether two histograms share binning and range and can
// therefore be merged or compared bin-by-bin.
func (h *Histogram) Compatible(o *Histogram) bool {
	return o != nil && len(h.counts) == len(o.counts) && h.min == o.min && h.max == o.max
}

// ErrIncompatible is returned when merging histograms with different binning.
var ErrIncompatible = errors.New("histogram: incompatible binning")

// Merge adds all of o's mass into h. The two histograms must be compatible.
func (h *Histogram) Merge(o *Histogram) error {
	if !h.Compatible(o) {
		return ErrIncompatible
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	return nil
}

// String renders a compact single-line description, useful in logs.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist[%g,%g] n=%g {", h.min, h.max, h.total)
	for i, c := range h.counts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g", c)
	}
	b.WriteByte('}')
	return b.String()
}
