package histogram

import (
	"math"
	"testing"
	"testing/quick"

	"fairrank/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0, 1); err != ErrBadBins {
		t.Errorf("New(0,0,1) err = %v, want ErrBadBins", err)
	}
	if _, err := New(-3, 0, 1); err != ErrBadBins {
		t.Errorf("New(-3,0,1) err = %v, want ErrBadBins", err)
	}
	if _, err := New(10, 1, 1); err != ErrBadRange {
		t.Errorf("New(10,1,1) err = %v, want ErrBadRange", err)
	}
	if _, err := New(10, 2, 1); err != ErrBadRange {
		t.Errorf("New(10,2,1) err = %v, want ErrBadRange", err)
	}
	if h, err := New(10, 0, 1); err != nil || h == nil {
		t.Errorf("New(10,0,1) = %v, %v; want valid", h, err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0,0,1) did not panic")
		}
	}()
	MustNew(0, 0, 1)
}

func TestBinIndex(t *testing.T) {
	h := MustNew(10, 0, 1)
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0}, {0, 0}, {0.05, 0}, {0.0999, 0},
		{0.1, 1}, {0.55, 5}, {0.95, 9},
		{1.0, 9}, {2.0, 9}, // clamped to last bin
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := h.BinIndex(c.v); got != c.want {
			t.Errorf("BinIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBinCenter(t *testing.T) {
	h := MustNew(10, 0, 1)
	if got := h.BinCenter(0); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("BinCenter(0) = %v, want 0.05", got)
	}
	if got := h.BinCenter(9); math.Abs(got-0.95) > 1e-12 {
		t.Errorf("BinCenter(9) = %v, want 0.95", got)
	}
}

func TestAddAndTotal(t *testing.T) {
	h := MustNew(4, 0, 1)
	h.AddAll([]float64{0.1, 0.3, 0.6, 0.9, 0.9})
	if h.Total() != 5 {
		t.Fatalf("Total = %v, want 5", h.Total())
	}
	want := []float64{1, 1, 1, 2}
	for i, w := range want {
		if h.Count(i) != w {
			t.Errorf("bin %d = %v, want %v", i, h.Count(i), w)
		}
	}
}

func TestAddWeightedPanicsOnNegative(t *testing.T) {
	h := MustNew(4, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	h.AddWeighted(0.5, -1)
}

func TestRemove(t *testing.T) {
	h := MustNew(4, 0, 1)
	h.Add(0.1)
	h.Add(0.9)
	if err := h.Remove(0.1); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 1 || h.Count(0) != 0 {
		t.Fatalf("after remove: total=%v bin0=%v", h.Total(), h.Count(0))
	}
	if err := h.Remove(0.1); err == nil {
		t.Fatal("removing from empty bin accepted")
	}
	// Add/remove cycles restore the exact state.
	before := h.Counts()
	h.Add(0.5)
	if err := h.Remove(0.5); err != nil {
		t.Fatal(err)
	}
	after := h.Counts()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("add/remove not idempotent at bin %d", i)
		}
	}
}

func TestPMFSumsToOne(t *testing.T) {
	h := MustNew(10, 0, 1)
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		h.Add(r.Float64())
	}
	sum := 0.0
	for _, p := range h.PMF() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", sum)
	}
}

func TestEmptyPMFUniform(t *testing.T) {
	h := MustNew(5, 0, 1)
	for _, p := range h.PMF() {
		if math.Abs(p-0.2) > 1e-12 {
			t.Fatalf("empty PMF bin = %v, want 0.2", p)
		}
	}
}

func TestCDFMonotoneEndsAtOne(t *testing.T) {
	h := MustNew(10, 0, 1)
	r := rng.New(2)
	for i := 0; i < 500; i++ {
		h.Add(r.Float64())
	}
	cdf := h.CDF()
	prev := 0.0
	for i, c := range cdf {
		if c < prev-1e-12 {
			t.Fatalf("CDF decreases at bin %d", i)
		}
		prev = c
	}
	if math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
		t.Fatalf("CDF ends at %v", cdf[len(cdf)-1])
	}
}

func TestMeanVariance(t *testing.T) {
	h := MustNew(10, 0, 1)
	// All mass in bin 5 (center 0.55).
	for i := 0; i < 10; i++ {
		h.Add(0.55)
	}
	if got := h.Mean(); math.Abs(got-0.55) > 1e-12 {
		t.Errorf("Mean = %v, want 0.55", got)
	}
	if got := h.Variance(); got != 0 {
		t.Errorf("Variance = %v, want 0", got)
	}
	empty := MustNew(10, 0, 1)
	if !math.IsNaN(empty.Mean()) || !math.IsNaN(empty.Variance()) {
		t.Error("empty histogram mean/variance should be NaN")
	}
}

func TestCloneIndependent(t *testing.T) {
	h := MustNew(4, 0, 1)
	h.Add(0.5)
	c := h.Clone()
	c.Add(0.9)
	if h.Total() != 1 || c.Total() != 2 {
		t.Fatalf("clone not independent: h=%v c=%v", h.Total(), c.Total())
	}
}

func TestReset(t *testing.T) {
	h := MustNew(4, 0, 1)
	h.AddAll([]float64{0.1, 0.9})
	h.Reset()
	if !h.Empty() {
		t.Fatal("Reset did not empty histogram")
	}
}

func TestMergeCompatibility(t *testing.T) {
	a := MustNew(4, 0, 1)
	b := MustNew(4, 0, 1)
	c := MustNew(5, 0, 1)
	d := MustNew(4, 0, 2)
	a.Add(0.1)
	b.Add(0.9)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge compatible: %v", err)
	}
	if a.Total() != 2 {
		t.Fatalf("merged total = %v", a.Total())
	}
	if err := a.Merge(c); err != ErrIncompatible {
		t.Errorf("merge different bins err = %v", err)
	}
	if err := a.Merge(d); err != ErrIncompatible {
		t.Errorf("merge different range err = %v", err)
	}
	if err := a.Merge(nil); err != ErrIncompatible {
		t.Errorf("merge nil err = %v", err)
	}
}

// Property: merging two histograms conserves mass and equals adding the
// union of samples.
func TestMergeAdditivityProperty(t *testing.T) {
	f := func(seed uint64, na, nb uint8) bool {
		r := rng.New(seed)
		a := MustNew(8, 0, 1)
		b := MustNew(8, 0, 1)
		u := MustNew(8, 0, 1)
		for i := 0; i < int(na); i++ {
			v := r.Float64()
			a.Add(v)
			u.Add(v)
		}
		for i := 0; i < int(nb); i++ {
			v := r.Float64()
			b.Add(v)
			u.Add(v)
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		for i := 0; i < 8; i++ {
			if a.Count(i) != u.Count(i) {
				return false
			}
		}
		return a.Total() == u.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: total mass always equals the number of Add calls.
func TestMassConservationProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := rng.New(seed)
		h := MustNew(10, 0, 1)
		for i := 0; i < int(n); i++ {
			h.Add(r.FloatRange(-0.5, 1.5)) // includes out-of-range values
		}
		return h.Total() == float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	h := MustNew(2, 0, 1)
	h.Add(0.2)
	if got := h.String(); got != "hist[0,1] n=1 {1 0}" {
		t.Errorf("String = %q", got)
	}
}

func TestBinIndices(t *testing.T) {
	h := MustNew(10, 0, 1)
	vs := []float64{-0.5, 0, 0.05, 0.55, 0.999, 1, 1.5, math.NaN()}
	got := h.BinIndices(vs)
	for i, v := range vs {
		if got[i] != h.BinIndex(v) {
			t.Errorf("BinIndices[%d] = %d, BinIndex(%v) = %d", i, got[i], v, h.BinIndex(v))
		}
	}
}

func TestNormalizeCountsMatchesPMF(t *testing.T) {
	h := MustNew(5, 0, 1)
	vs := []float64{0.1, 0.1, 0.3, 0.7, 0.95, 0.95, 0.95}
	h.AddAll(vs)
	got := NormalizeCounts(h.Counts())
	want := h.PMF()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bin %d: NormalizeCounts = %v, PMF = %v", i, got[i], want[i])
		}
	}
	// Empty counts normalize to the same uniform fallback as an empty PMF.
	empty := NormalizeCounts(make([]float64, 5))
	uniform := MustNew(5, 0, 1).PMF()
	for i := range uniform {
		if empty[i] != uniform[i] {
			t.Errorf("empty bin %d: %v != %v", i, empty[i], uniform[i])
		}
	}
}
