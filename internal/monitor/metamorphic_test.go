package monitor

import (
	"fmt"
	"math"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/testkit"
)

// Metamorphic suite for the streaming monitor, on top of the bit-identical
// incremental-vs-Recompute contract pinned by delta_property_test.go:
// joins over distinct workers commute, and an arbitrary valid event stream
// leaves the monitor agreeing with the testkit oracle evaluated on the
// reconstructed live population.

const streamGroups = 4

func streamSchema() *dataset.Schema {
	return &dataset.Schema{
		Protected: []dataset.Attribute{dataset.Cat("G", "g0", "g1", "g2", "g3")},
		Observed:  []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
}

func streamMonitor(t *testing.T) *Monitor {
	t.Helper()
	m, err := New(streamSchema(), []string{"G"}, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func groupAttrs(g int) map[string]any {
	return map[string]any{"G": fmt.Sprintf("g%d", g)}
}

func applyEvent(t *testing.T, m *Monitor, ev testkit.Event) {
	t.Helper()
	var err error
	switch ev.Kind {
	case testkit.EventJoin:
		err = m.Join(ev.ID, groupAttrs(ev.Group), ev.Score)
	case testkit.EventLeave:
		err = m.Leave(ev.ID)
	case testkit.EventRescore:
		err = m.Rescore(ev.ID, ev.Score)
	}
	if err != nil {
		t.Fatalf("apply %+v: %v", ev, err)
	}
}

// Joins of distinct workers commute: any permutation of a joins-only stream
// must leave the monitor in a state with bit-identical unfairness. The
// incremental triangle is contracted to match Recompute exactly, and
// Recompute sums in canonical group order, so even the float result may not
// depend on arrival order.
func TestJoinsCommute(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		g := testkit.NewGen(seed)
		events := g.Joins(streamGroups, g.R.IntRange(2, 120))

		inOrder := streamMonitor(t)
		for _, ev := range events {
			applyEvent(t, inOrder, ev)
		}

		shuffled := append([]testkit.Event(nil), events...)
		g.R.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		reordered := streamMonitor(t)
		for _, ev := range shuffled {
			applyEvent(t, reordered, ev)
		}

		a, errA := inOrder.UnfairnessErr()
		b, errB := reordered.UnfairnessErr()
		if errA != nil || errB != nil {
			t.Fatalf("seed %d: %v / %v", seed, errA, errB)
		}
		if a != b {
			t.Fatalf("seed %d: join order changed unfairness: %v vs %v", seed, a, b)
		}
	}
}

// An arbitrary valid join/leave/rescore stream must keep three views in
// lockstep at every checkpoint: the incremental triangle, the from-scratch
// Recompute (bit-identical), and the testkit oracle evaluated on the live
// population reconstructed by replaying the stream (within Tol).
func TestEventStreamMatchesOracle(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		g := testkit.NewGen(seed)
		events := g.Events(streamGroups, g.R.IntRange(10, 300))
		m := streamMonitor(t)
		live := map[string]testkit.Event{}

		for i, ev := range events {
			applyEvent(t, m, ev)
			switch ev.Kind {
			case testkit.EventJoin, testkit.EventRescore:
				live[ev.ID] = ev
			case testkit.EventLeave:
				delete(live, ev.ID)
			}
			if i%50 != 49 && i != len(events)-1 {
				continue
			}

			inc, err := m.UnfairnessErr()
			if err != nil {
				t.Fatalf("seed %d event %d: %v", seed, i, err)
			}
			batch, err := m.Recompute()
			if err != nil {
				t.Fatalf("seed %d event %d: Recompute: %v", seed, i, err)
			}
			if inc != batch {
				t.Fatalf("seed %d event %d: incremental %v != recompute %v", seed, i, inc, batch)
			}

			scores, parts := oracleView(live)
			var o testkit.Oracle
			want := o.Unfairness(scores, parts, 10)
			if math.Abs(inc-want) > testkit.Tol {
				t.Fatalf("seed %d event %d: monitor %v, oracle %v (workers=%d groups=%d)",
					seed, i, inc, want, len(live), len(parts))
			}
		}
	}
}

// oracleView flattens the live worker set into a score column plus
// per-group index parts, skipping empty groups like the monitor does.
func oracleView(live map[string]testkit.Event) ([]float64, [][]int) {
	scores := make([]float64, 0, len(live))
	byGroup := make([][]int, streamGroups)
	for _, ev := range live {
		byGroup[ev.Group] = append(byGroup[ev.Group], len(scores))
		scores = append(scores, ev.Score)
	}
	var parts [][]int
	for _, idx := range byGroup {
		if len(idx) > 0 {
			parts = append(parts, idx)
		}
	}
	return scores, parts
}
