// Package monitor provides continuous fairness monitoring for a live
// marketplace. The paper audits a static snapshot of workers; on a real
// platform workers join, leave, and are re-scored constantly. Monitor
// maintains the per-group score histograms of a fixed partitioning
// incrementally, so unfairness can be re-evaluated after every event in
// O(groups² · bins) without rescanning the population, and raises an alert
// when unfairness drifts past a threshold.
package monitor

import (
	"errors"
	"fmt"
	"sort"

	"fairrank/internal/dataset"
	"fairrank/internal/emd"
	"fairrank/internal/histogram"
)

// Monitor tracks the unfairness of the partitioning induced by a fixed set
// of protected attributes, under a stream of worker arrivals, departures
// and re-scores. It is not safe for concurrent use; wrap it with a mutex
// if events arrive from multiple goroutines.
type Monitor struct {
	schema    *dataset.Schema
	attrs     []int // monitored protected attribute indices
	bins      int
	threshold float64

	groups map[string]*histogram.Histogram
	// workers maps worker ID → (group key, score) so departures and
	// re-scores need only the ID.
	workers map[string]workerState
	// minWorkers suppresses alerts until the population is large enough
	// for the unfairness estimate to be more than sampling noise.
	minWorkers int
}

type workerState struct {
	key   string
	score float64
}

// New creates a monitor over the partitioning induced by the named
// protected attributes. threshold is the unfairness level at which Alert
// reports true; bins defaults to 10 when <= 0.
func New(schema *dataset.Schema, attrs []string, bins int, threshold float64) (*Monitor, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(attrs) == 0 {
		return nil, errors.New("monitor: need at least one attribute")
	}
	if threshold < 0 {
		return nil, errors.New("monitor: negative threshold")
	}
	if bins <= 0 {
		bins = 10
	}
	m := &Monitor{
		schema:    schema.Clone(),
		bins:      bins,
		threshold: threshold,
		groups:    map[string]*histogram.Histogram{},
		workers:   map[string]workerState{},
	}
	for _, name := range attrs {
		i := schema.ProtectedIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("monitor: %q is not a protected attribute", name)
		}
		m.attrs = append(m.attrs, i)
	}
	return m, nil
}

// groupKey computes the partition cell of a worker given its protected
// attribute values (raw strings for categorical, numbers for numeric).
func (m *Monitor) groupKey(protected map[string]any) (string, error) {
	key := ""
	for _, a := range m.attrs {
		attr := m.schema.Protected[a]
		v, ok := protected[attr.Name]
		if !ok {
			return "", fmt.Errorf("monitor: missing attribute %q", attr.Name)
		}
		var code int
		switch attr.Kind {
		case dataset.Categorical:
			s, ok := v.(string)
			if !ok {
				return "", fmt.Errorf("monitor: attribute %q wants a string, got %T", attr.Name, v)
			}
			code = attr.CategoryIndex(s)
			if code < 0 {
				return "", fmt.Errorf("monitor: attribute %q has no value %q", attr.Name, s)
			}
		case dataset.Numeric:
			f, ok := toFloat(v)
			if !ok {
				return "", fmt.Errorf("monitor: attribute %q wants a number, got %T", attr.Name, v)
			}
			code = attr.BucketIndex(f)
		}
		key += fmt.Sprintf("%d=%d|", a, code)
	}
	return key, nil
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	default:
		return 0, false
	}
}

// Join records a worker arriving (or being hired onto) the platform with
// the given protected attributes and current score.
func (m *Monitor) Join(id string, protected map[string]any, score float64) error {
	if id == "" {
		return errors.New("monitor: empty worker id")
	}
	if _, dup := m.workers[id]; dup {
		return fmt.Errorf("monitor: worker %q already present", id)
	}
	key, err := m.groupKey(protected)
	if err != nil {
		return err
	}
	h := m.groups[key]
	if h == nil {
		h = histogram.MustNew(m.bins, 0, 1)
		m.groups[key] = h
	}
	h.Add(score)
	m.workers[id] = workerState{key: key, score: score}
	return nil
}

// Leave records a worker departing the platform.
func (m *Monitor) Leave(id string) error {
	st, ok := m.workers[id]
	if !ok {
		return fmt.Errorf("monitor: unknown worker %q", id)
	}
	if err := m.groups[st.key].Remove(st.score); err != nil {
		return err
	}
	if m.groups[st.key].Empty() {
		delete(m.groups, st.key)
	}
	delete(m.workers, id)
	return nil
}

// Rescore updates a worker's score (e.g. after new reviews arrive).
func (m *Monitor) Rescore(id string, score float64) error {
	st, ok := m.workers[id]
	if !ok {
		return fmt.Errorf("monitor: unknown worker %q", id)
	}
	if err := m.groups[st.key].Remove(st.score); err != nil {
		return err
	}
	m.groups[st.key].Add(score)
	st.score = score
	m.workers[id] = st
	return nil
}

// Workers returns the number of tracked workers.
func (m *Monitor) Workers() int { return len(m.workers) }

// Groups returns the number of non-empty groups.
func (m *Monitor) Groups() int { return len(m.groups) }

// Unfairness computes the current average pairwise EMD between the
// non-empty groups' score histograms.
func (m *Monitor) Unfairness() float64 {
	if len(m.groups) < 2 {
		return 0
	}
	keys := make([]string, 0, len(m.groups))
	for k := range m.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hs := make([]*histogram.Histogram, len(keys))
	for i, k := range keys {
		hs[i] = m.groups[k]
	}
	d, err := emd.AveragePairwise(hs, emd.GroundScore)
	if err != nil {
		return 0
	}
	return d
}

// SetMinWorkers sets a warm-up guard: Alert never reports a breach while
// fewer than n workers are tracked, avoiding false alarms from tiny-sample
// noise. The default is 0 (no guard); Unfairness is unaffected.
func (m *Monitor) SetMinWorkers(n int) { m.minWorkers = n }

// Alert reports the current unfairness and whether it breaches the
// configured threshold (subject to the SetMinWorkers warm-up guard).
func (m *Monitor) Alert() (unfairness float64, breached bool) {
	u := m.Unfairness()
	return u, u > m.threshold && len(m.workers) >= m.minWorkers
}
