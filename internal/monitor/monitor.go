// Package monitor provides continuous fairness monitoring for a live
// marketplace. The paper audits a static snapshot of workers; on a real
// platform workers join, leave, and are re-scored constantly. Monitor
// maintains the per-group score histograms of a fixed partitioning
// incrementally and, like the core engine, keeps the flat upper triangle
// of pairwise EMDs alive across events: a stream event touches exactly one
// group, so only the k-1 distances involving that group are recomputed
// (O(k·bins) work) and a segment sum tree over the triangle refreshes the
// running total in O(k·log k) — instead of the old O(k²·bins) rebuild.
// Unfairness is therefore cheap enough to re-evaluate after every event at
// marketplace traffic rates, and the monitor raises an alert when it
// drifts past a threshold.
package monitor

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"fairrank/internal/dataset"
	"fairrank/internal/emd"
	"fairrank/internal/histogram"
)

// Monitor tracks the unfairness of the partitioning induced by a fixed set
// of protected attributes, under a stream of worker arrivals, departures
// and re-scores. It is not safe for concurrent use; wrap it with a mutex
// if events arrive from multiple goroutines.
type Monitor struct {
	schema    *dataset.Schema
	attrs     []int // monitored protected attribute indices
	bins      int
	threshold float64
	unit      float64 // EMD ground distance between adjacent bins

	groups map[string]*group
	// order holds the non-empty groups sorted by key; a group's index in
	// order addresses its rows in the distance triangle.
	order []*group
	// tri is the flat upper triangle of pairwise EMDs over order: the
	// distance between groups i < j lives at tri(k, i, j). Stream events
	// rewrite only the changed group's row.
	tri []float64
	// sum reduces tri; its root divided by the pair count is the current
	// unfairness. The tree gives O(log) exact updates with a reduction
	// order fixed by the leaf count, so the incremental value is
	// bit-identical to Recompute's from-scratch rebuild.
	sum *sumTree
	// workers maps worker ID → (group key, score) so departures and
	// re-scores need only the ID.
	workers map[string]workerState
	// minWorkers suppresses alerts until the population is large enough
	// for the unfairness estimate to be more than sampling noise.
	minWorkers int
	// lastErr records the first event-processing failure that may have
	// left the triangle inconsistent; UnfairnessErr surfaces it.
	lastErr error
	// keyBuf is the reusable scratch for group-key construction, so the
	// steady state (every group already known) allocates nothing: the key
	// is built here and only materialized as a string when a new group is
	// born.
	keyBuf []byte
	// met holds telemetry handles (see SetMetrics); its zero value is the
	// disabled state and costs a few predicted branches per event.
	met monitorMetrics
}

// group is one non-empty partition cell: its histogram plus the cached
// PMF the distance computations compare (refreshed in place whenever the
// histogram changes, so an event never re-normalizes untouched groups).
type group struct {
	key  string
	idx  int // position in Monitor.order
	hist *histogram.Histogram
	pmf  []float64
}

type workerState struct {
	g     *group
	score float64
}

// New creates a monitor over the partitioning induced by the named
// protected attributes. threshold is the unfairness level at which Alert
// reports true; bins defaults to 10 when <= 0.
func New(schema *dataset.Schema, attrs []string, bins int, threshold float64) (*Monitor, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(attrs) == 0 {
		return nil, errors.New("monitor: need at least one attribute")
	}
	if threshold < 0 {
		return nil, errors.New("monitor: negative threshold")
	}
	if bins <= 0 {
		bins = 10
	}
	m := &Monitor{
		schema:    schema.Clone(),
		bins:      bins,
		threshold: threshold,
		unit:      1 / float64(bins), // GroundScore over [0,1]: the bin width
		groups:    map[string]*group{},
		workers:   map[string]workerState{},
	}
	for _, name := range attrs {
		i := schema.ProtectedIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("monitor: %q is not a protected attribute", name)
		}
		m.attrs = append(m.attrs, i)
	}
	return m, nil
}

// appendGroupKey appends the partition cell of a worker with the given
// protected attribute values (raw strings for categorical, numbers for
// numeric) to dst and returns the extended slice. Building into the
// monitor's reusable scratch keeps the per-event path allocation-free:
// group lookup converts the bytes in place (the compiler elides the string
// copy for map reads) and only a group birth materializes a real string.
func (m *Monitor) appendGroupKey(dst []byte, protected map[string]any) ([]byte, error) {
	for _, a := range m.attrs {
		attr := m.schema.Protected[a]
		v, ok := protected[attr.Name]
		if !ok {
			return nil, fmt.Errorf("monitor: missing attribute %q", attr.Name)
		}
		var code int
		switch attr.Kind {
		case dataset.Categorical:
			s, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("monitor: attribute %q wants a string, got %T", attr.Name, v)
			}
			code = attr.CategoryIndex(s)
			if code < 0 {
				return nil, fmt.Errorf("monitor: attribute %q has no value %q", attr.Name, s)
			}
		case dataset.Numeric:
			f, ok := toFloat(v)
			if !ok {
				return nil, fmt.Errorf("monitor: attribute %q wants a number, got %T", attr.Name, v)
			}
			code = attr.BucketIndex(f)
		}
		dst = strconv.AppendInt(dst, int64(a), 10)
		dst = append(dst, '=')
		dst = strconv.AppendInt(dst, int64(code), 10)
		dst = append(dst, '|')
	}
	return dst, nil
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	default:
		return 0, false
	}
}

// tri maps pair (i, j) with i < j to its slot in the flat upper triangle
// of a k×k distance matrix.
func triSlot(k, i, j int) int { return i*(2*k-i-1)/2 + j - i - 1 }

// pmfInto writes h's PMF into dst without allocating, with exactly
// Histogram.PMF's normalization (uniform when empty).
func pmfInto(h *histogram.Histogram, dst []float64) {
	total := h.Total()
	if total == 0 {
		u := 1 / float64(len(dst))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	for i := range dst {
		dst[i] = h.Count(i) / total
	}
}

// touch refreshes g's cached PMF and the k-1 triangle entries involving g
// after its histogram changed — the O(k) delta path every non-structural
// stream event takes.
func (m *Monitor) touch(g *group) {
	pmfInto(g.hist, g.pmf)
	k := len(m.order)
	for _, o := range m.order {
		if o == g {
			continue
		}
		i, j := g.idx, o.idx
		if i > j {
			i, j = j, i
		}
		slot := triSlot(k, i, j)
		d := emd.PMFDistance(m.order[i].pmf, m.order[j].pmf, m.unit)
		m.tri[slot] = d
		m.sum.set(slot, d)
	}
	if k > 1 {
		m.met.distUpdates.Add(int64(k - 1))
		m.met.treeUpdates.Add(int64(k - 1))
	}
}

// rebuild re-derives order indices, the triangle and the sum tree after a
// structural change (group born or died), copying every surviving distance
// from the old triangle via oldIdx (a new position's previous index, -1
// for a new group whose row the caller fills via touch). Structural events
// are O(k²) but rare — the steady-state group set of a marketplace is
// fixed; per-worker events take the O(k) touch path.
func (m *Monitor) rebuild(oldK int, oldTri []float64, oldIdx []int) {
	k := len(m.order)
	for i, g := range m.order {
		g.idx = i
	}
	m.tri = make([]float64, k*(k-1)/2)
	for i := 0; i < k; i++ {
		if oldIdx[i] < 0 {
			continue
		}
		for j := i + 1; j < k; j++ {
			if oldIdx[j] < 0 {
				continue
			}
			m.tri[triSlot(k, i, j)] = oldTri[triSlot(oldK, oldIdx[i], oldIdx[j])]
		}
	}
	m.sum = newSumTree(m.tri)
	m.met.rebuilds.Inc()
}

// insertGroup adds a new empty group at its sorted position. Its triangle
// row is left zero; the caller must touch it after adding the first score.
func (m *Monitor) insertGroup(key string) *group {
	g := &group{key: key, hist: histogram.MustNew(m.bins, 0, 1), pmf: make([]float64, m.bins)}
	m.groups[key] = g
	pos := sort.Search(len(m.order), func(i int) bool { return m.order[i].key >= key })
	oldK, oldTri := len(m.order), m.tri
	m.order = append(m.order, nil)
	copy(m.order[pos+1:], m.order[pos:])
	m.order[pos] = g
	oldIdx := make([]int, len(m.order))
	for i := range oldIdx {
		switch {
		case i < pos:
			oldIdx[i] = i
		case i == pos:
			oldIdx[i] = -1
		default:
			oldIdx[i] = i - 1
		}
	}
	m.rebuild(oldK, oldTri, oldIdx)
	return g
}

// removeGroup drops an emptied group, compacting the triangle.
func (m *Monitor) removeGroup(g *group) {
	delete(m.groups, g.key)
	pos := g.idx
	oldK, oldTri := len(m.order), m.tri
	m.order = append(m.order[:pos], m.order[pos+1:]...)
	oldIdx := make([]int, len(m.order))
	for i := range oldIdx {
		if i < pos {
			oldIdx[i] = i
		} else {
			oldIdx[i] = i + 1
		}
	}
	m.rebuild(oldK, oldTri, oldIdx)
}

// Join records a worker arriving (or being hired onto) the platform with
// the given protected attributes and current score.
func (m *Monitor) Join(id string, protected map[string]any, score float64) error {
	if id == "" {
		return errors.New("monitor: empty worker id")
	}
	if _, dup := m.workers[id]; dup {
		return fmt.Errorf("monitor: worker %q already present", id)
	}
	buf, err := m.appendGroupKey(m.keyBuf[:0], protected)
	if err != nil {
		return err
	}
	m.keyBuf = buf
	g := m.groups[string(buf)]
	if g == nil {
		g = m.insertGroup(string(buf))
	}
	g.hist.Add(score)
	m.touch(g)
	m.workers[id] = workerState{g: g, score: score}
	m.met.joins.Inc()
	m.met.sync(m)
	return nil
}

// Leave records a worker departing the platform.
func (m *Monitor) Leave(id string) error {
	st, ok := m.workers[id]
	if !ok {
		return fmt.Errorf("monitor: unknown worker %q", id)
	}
	g := st.g
	if err := g.hist.Remove(st.score); err != nil {
		err = fmt.Errorf("monitor: leave %q: %w", id, err)
		m.lastErr = err
		return err
	}
	if g.hist.Empty() {
		m.removeGroup(g)
	} else {
		m.touch(g)
	}
	delete(m.workers, id)
	m.met.leaves.Inc()
	m.met.sync(m)
	return nil
}

// Rescore updates a worker's score (e.g. after new reviews arrive).
func (m *Monitor) Rescore(id string, score float64) error {
	st, ok := m.workers[id]
	if !ok {
		return fmt.Errorf("monitor: unknown worker %q", id)
	}
	g := st.g
	if err := g.hist.Remove(st.score); err != nil {
		err = fmt.Errorf("monitor: rescore %q: %w", id, err)
		m.lastErr = err
		return err
	}
	g.hist.Add(score)
	m.touch(g)
	st.score = score
	m.workers[id] = st
	m.met.rescores.Inc()
	m.met.sync(m)
	return nil
}

// Workers returns the number of tracked workers.
func (m *Monitor) Workers() int { return len(m.workers) }

// Groups returns the number of non-empty groups.
func (m *Monitor) Groups() int { return len(m.groups) }

// UnfairnessErr returns the current average pairwise EMD between the
// non-empty groups' score histograms, read off the incrementally
// maintained triangle in O(1). It returns a non-nil error if an earlier
// event failed in a way that may have left the monitor's bookkeeping
// inconsistent (e.g. a Leave or Rescore whose histogram removal failed),
// in which case the value is the best available estimate.
func (m *Monitor) UnfairnessErr() (float64, error) {
	if len(m.order) < 2 {
		return 0, m.lastErr
	}
	return m.sum.root() / float64(len(m.tri)), m.lastErr
}

// Unfairness is the lossy convenience wrapper around UnfairnessErr: it
// reports 0 whenever an error is pending, so callers that cannot handle
// errors fail toward "no unfairness signal" rather than a stale value.
// Monitoring loops should prefer UnfairnessErr.
func (m *Monitor) Unfairness() float64 {
	u, err := m.UnfairnessErr()
	if err != nil {
		return 0
	}
	return u
}

// Recompute rebuilds every group PMF and pairwise distance from scratch
// and reduces them with a fresh sum tree of the same shape, without
// consulting (or mutating) the incremental state. It exists as the
// correctness oracle for the delta path: Recompute's result is
// bit-identical to UnfairnessErr's whenever the monitor is consistent.
func (m *Monitor) Recompute() (float64, error) {
	k := len(m.order)
	if k < 2 {
		return 0, m.lastErr
	}
	pmfs := make([][]float64, k)
	for i, g := range m.order {
		pmfs[i] = g.hist.PMF()
	}
	tri := make([]float64, k*(k-1)/2)
	s := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			tri[s] = emd.PMFDistance(pmfs[i], pmfs[j], m.unit)
			s++
		}
	}
	return newSumTree(tri).root() / float64(len(tri)), m.lastErr
}

// Clone returns a deep copy of the monitor: groups, histograms, the
// distance triangle, the sum tree and the worker table are all duplicated,
// so events applied to either side never affect the other. Windowed
// estimators and tests use it to checkpoint state without replaying the
// stream. Telemetry handles are NOT copied — the clone starts with metrics
// disabled (attach its own registry via SetMetrics if needed) so counters
// never double-count a forked monitor.
func (m *Monitor) Clone() *Monitor {
	c := &Monitor{
		schema:     m.schema.Clone(),
		attrs:      append([]int(nil), m.attrs...),
		bins:       m.bins,
		threshold:  m.threshold,
		unit:       m.unit,
		minWorkers: m.minWorkers,
		lastErr:    m.lastErr,
		groups:     make(map[string]*group, len(m.groups)),
		workers:    make(map[string]workerState, len(m.workers)),
		order:      make([]*group, 0, len(m.order)),
	}
	for _, g := range m.order {
		ng := &group{key: g.key, idx: g.idx, hist: g.hist.Clone(), pmf: append([]float64(nil), g.pmf...)}
		c.groups[ng.key] = ng
		c.order = append(c.order, ng)
	}
	c.tri = append([]float64(nil), m.tri...)
	if m.sum != nil {
		// Same leaf count ⇒ same tree shape ⇒ bit-identical root (the
		// sumTree reduction order is a pure function of the leaf count).
		c.sum = newSumTree(c.tri)
	}
	for id, st := range m.workers {
		c.workers[id] = workerState{g: c.groups[st.g.key], score: st.score}
	}
	return c
}

// SetMinWorkers sets a warm-up guard: Alert never reports a breach while
// fewer than n workers are tracked, avoiding false alarms from tiny-sample
// noise. The default is 0 (no guard); Unfairness is unaffected.
func (m *Monitor) SetMinWorkers(n int) { m.minWorkers = n }

// Alert reports the current unfairness and whether it breaches the
// configured threshold (subject to the SetMinWorkers warm-up guard).
//
// Alert is threshold-only: it compares the instantaneous unbounded-history
// estimate against one fixed level, with no hysteresis, no cooldown, and no
// sensitivity to drift (a slow worsening never crosses a generous static
// threshold). Long-running deployments that need windowed estimates,
// delta-over-window or window-vs-baseline drift rules, and flap-resistant
// alarm lifecycles should use package internal/drift, which layers all of
// that on top of this monitor.
func (m *Monitor) Alert() (unfairness float64, breached bool) {
	u := m.Unfairness()
	return u, u > m.threshold && len(m.workers) >= m.minWorkers
}
