package monitor

import (
	"fmt"
	"strings"
	"testing"

	"fairrank/internal/rng"
)

// TestCloneIndependence pins Clone's deep-copy contract: the clone reads
// bit-identically at the fork point, and events applied to either side
// never leak into the other.
func TestCloneIndependence(t *testing.T) {
	m := newMonitor(t, []string{"Gender"}, 1)
	r := rng.New(7)
	for i := 0; i < 50; i++ {
		attrs := maleAttrs()
		if i%2 == 1 {
			attrs = femaleAttrs()
		}
		if err := m.Join(fmt.Sprintf("w%d", i), attrs, r.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	c := m.Clone()
	mu, err := m.UnfairnessErr()
	if err != nil {
		t.Fatal(err)
	}
	cu, err := c.UnfairnessErr()
	if err != nil {
		t.Fatal(err)
	}
	if mu != cu {
		t.Fatalf("clone diverges at fork: %v != %v", cu, mu)
	}
	if c.Workers() != m.Workers() || c.Groups() != m.Groups() {
		t.Fatalf("clone population mismatch: %d/%d vs %d/%d",
			c.Workers(), c.Groups(), m.Workers(), m.Groups())
	}
	// Mutate the original; the clone must not move.
	for i := 0; i < 25; i++ {
		if err := m.Leave(fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := c.UnfairnessErr(); got != cu {
		t.Fatalf("clone moved when original mutated: %v != %v", got, cu)
	}
	// Mutate the clone; it must stay internally consistent (delta path
	// agrees with Recompute) and the original must not move.
	before, _ := m.UnfairnessErr()
	for i := 25; i < 50; i++ {
		if err := c.Rescore(fmt.Sprintf("w%d", i), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	inc, err := c.UnfairnessErr()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Recompute()
	if err != nil {
		t.Fatal(err)
	}
	if inc != rec {
		t.Fatalf("mutated clone inconsistent: incremental %v != recompute %v", inc, rec)
	}
	if got, _ := m.UnfairnessErr(); got != before {
		t.Fatalf("original moved when clone mutated: %v != %v", got, before)
	}
}

// TestEventErrorsNameWorker is the regression test for the Leave/Rescore
// error paths: a failed histogram removal must name the worker, so
// failures in long streams are attributable.
func TestEventErrorsNameWorker(t *testing.T) {
	for _, op := range []string{"leave", "rescore"} {
		m := newMonitor(t, []string{"Gender"}, 1)
		if err := m.Join("victim-42", maleAttrs(), 0.1); err != nil {
			t.Fatal(err)
		}
		// Corrupt the bookkeeping so the histogram removal must fail.
		m.workers["victim-42"] = workerState{g: m.workers["victim-42"].g, score: 0.95}
		var err error
		if op == "leave" {
			err = m.Leave("victim-42")
		} else {
			err = m.Rescore("victim-42", 0.2)
		}
		if err == nil {
			t.Fatalf("%s: corrupted removal succeeded", op)
		}
		if !strings.Contains(err.Error(), `"victim-42"`) {
			t.Fatalf("%s error does not name the worker: %v", op, err)
		}
	}
}
