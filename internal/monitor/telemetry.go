package monitor

import "fairrank/internal/telemetry"

// Monitor metric names, exported on the registry passed to SetMetrics.
const (
	MetricEvents          = "fairrank_monitor_events_total"
	MetricDistanceUpdates = "fairrank_monitor_distance_updates_total"
	MetricSumTreeUpdates  = "fairrank_monitor_sumtree_updates_total"
	MetricRebuilds        = "fairrank_monitor_rebuilds_total"
	MetricGroups          = "fairrank_monitor_groups"
	MetricWorkers         = "fairrank_monitor_workers"
)

// monitorMetrics holds the monitor's telemetry handles; the zero value
// (all nil) is the disabled state and every operation no-ops.
type monitorMetrics struct {
	joins    *telemetry.Counter // successful Join events
	leaves   *telemetry.Counter // successful Leave events
	rescores *telemetry.Counter // successful Rescore events

	distUpdates *telemetry.Counter // triangle entries recomputed by touch
	treeUpdates *telemetry.Counter // sum-tree point updates applied
	rebuilds    *telemetry.Counter // structural O(k²) rebuilds

	groups  *telemetry.Gauge // current non-empty group count
	workers *telemetry.Gauge // current tracked worker count
}

// sync publishes the population gauges. Gauges are set at event time
// rather than read live on scrape, so a concurrent /metrics handler never
// touches the monitor's (unsynchronized) maps.
func (mm *monitorMetrics) sync(m *Monitor) {
	mm.groups.Set(float64(len(m.groups)))
	mm.workers.Set(float64(len(m.workers)))
}

// SetMetrics attaches a telemetry registry: event rates, delta-path work
// (distance and sum-tree updates vs. structural rebuilds) and population
// gauges become observable. Attach before feeding events; counters
// accumulate across monitors sharing one registry. A nil registry leaves
// metrics disabled.
func (m *Monitor) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.met = monitorMetrics{
		joins:       reg.Counter(MetricEvents, telemetry.Label{Key: "type", Value: "join"}),
		leaves:      reg.Counter(MetricEvents, telemetry.Label{Key: "type", Value: "leave"}),
		rescores:    reg.Counter(MetricEvents, telemetry.Label{Key: "type", Value: "rescore"}),
		distUpdates: reg.Counter(MetricDistanceUpdates),
		treeUpdates: reg.Counter(MetricSumTreeUpdates),
		rebuilds:    reg.Counter(MetricRebuilds),
		groups:      reg.Gauge(MetricGroups),
		workers:     reg.Gauge(MetricWorkers),
	}
	m.met.sync(m)
}
