package monitor

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fairrank/internal/emd"
	"fairrank/internal/histogram"
	"fairrank/internal/rng"
	"fairrank/internal/simulate"
)

// TestQuickMonitorDelta is the property-based gate on the monitor's delta
// path: after an arbitrary Join/Leave/Rescore sequence (including group
// births and deaths), the incrementally maintained triangle agrees with
// Recompute bit-for-bit (same sum-tree reduction over fresh distances) and
// with a from-scratch emd.AveragePairwise over the live histograms to 1e-9
// (serial reduction order differs, values do not).
func TestQuickMonitorDelta(t *testing.T) {
	prop := func(seed uint64) bool {
		m, err := New(simulate.PaperSchema(), []string{"Gender", "Language"}, 8, 1)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		genders := []string{"Male", "Female"}
		langs := []string{"English", "Indian", "Other"}
		var live []string
		next := 0
		steps := 120 + int(seed%120)
		for step := 0; step < steps; step++ {
			switch op := r.Intn(4); {
			case op <= 1 || len(live) == 0: // join (biased so the population grows)
				id := fmt.Sprintf("w%d", next)
				next++
				prot := map[string]any{
					"Gender":   rng.Pick(r, genders),
					"Language": rng.Pick(r, langs),
				}
				if err := m.Join(id, prot, r.Float64()); err != nil {
					return false
				}
				live = append(live, id)
			case op == 2: // leave
				x := r.Intn(len(live))
				if err := m.Leave(live[x]); err != nil {
					return false
				}
				live[x] = live[len(live)-1]
				live = live[:len(live)-1]
			default: // rescore
				if err := m.Rescore(live[r.Intn(len(live))], r.Float64()); err != nil {
					return false
				}
			}
			if step%10 != 0 && step != steps-1 {
				continue
			}
			got, err := m.UnfairnessErr()
			if err != nil {
				return false
			}
			want, err := m.Recompute()
			if err != nil {
				return false
			}
			if got != want { // bit-identical contract with the oracle
				t.Logf("seed %d step %d: incremental %v != recompute %v", seed, step, got, want)
				return false
			}
			if ref := refAveragePairwise(m); math.Abs(got-ref) > 1e-9 {
				t.Logf("seed %d step %d: incremental %v vs serial %v", seed, step, got, ref)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// refAveragePairwise evaluates the monitor's grouping from scratch with
// the serial batch reduction the old monitor used.
func refAveragePairwise(m *Monitor) float64 {
	if len(m.groups) < 2 {
		return 0
	}
	keys := make([]string, 0, len(m.groups))
	for k := range m.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hs := make([]*histogram.Histogram, len(keys))
	for i, k := range keys {
		hs[i] = m.groups[k].hist
	}
	d, err := emd.AveragePairwise(hs, emd.GroundScore)
	if err != nil {
		return math.NaN()
	}
	return d
}

// TestUnfairnessErrSurfacesFailures drives the monitor into the
// inconsistent state the old implementation hid: a histogram removal that
// cannot succeed. UnfairnessErr must surface the error; Unfairness must
// fall back to 0 per its documented lossy contract.
func TestUnfairnessErrSurfacesFailures(t *testing.T) {
	m := newMonitor(t, []string{"Gender"}, 1)
	if err := m.Join("m", maleAttrs(), 0.1); err != nil {
		t.Fatal(err)
	}
	if err := m.Join("f", femaleAttrs(), 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := m.UnfairnessErr(); err != nil {
		t.Fatalf("healthy monitor reported error: %v", err)
	}
	// Corrupt the bookkeeping: claim m's worker was scored into a bin that
	// holds no mass, so the departure's histogram removal must fail.
	m.workers["m"] = workerState{g: m.workers["m"].g, score: 0.95}
	if err := m.Leave("m"); err == nil {
		t.Fatal("corrupted removal succeeded")
	}
	if _, err := m.UnfairnessErr(); err == nil {
		t.Fatal("UnfairnessErr hid the failure")
	}
	if u := m.Unfairness(); u != 0 {
		t.Fatalf("lossy Unfairness = %v with pending error, want 0", u)
	}
}

// TestStructuralRebuild exercises group birth and death directly: the
// triangle must stay consistent with Recompute across both.
func TestStructuralRebuild(t *testing.T) {
	m := newMonitor(t, []string{"Gender", "Language"}, 1)
	attrs := func(g, l string) map[string]any {
		a := maleAttrs()
		a["Gender"], a["Language"] = g, l
		return a
	}
	check := func() {
		t.Helper()
		got, err := m.UnfairnessErr()
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.Recompute()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("incremental %v != recompute %v", got, want)
		}
	}
	m.Join("a", attrs("Male", "English"), 0.9)
	check()
	m.Join("b", attrs("Female", "English"), 0.2)
	check()
	m.Join("c", attrs("Female", "Indian"), 0.5) // third group born
	check()
	m.Join("d", attrs("Male", "Other"), 0.7) // fourth group born
	check()
	if err := m.Leave("c"); err != nil { // third group dies
		t.Fatal(err)
	}
	if m.Groups() != 3 {
		t.Fatalf("groups = %d, want 3", m.Groups())
	}
	check()
	m.Rescore("d", 0.1)
	check()
}
