package monitor

import (
	"fmt"
	"testing"

	"fairrank/internal/telemetry"
)

// TestSetMetrics pins the monitor's telemetry surface: event counters by
// type, delta-path work counters, structural rebuild counts, and
// population gauges tracking the live state.
func TestSetMetrics(t *testing.T) {
	m := newMonitor(t, []string{"Gender"}, 0.5)
	reg := telemetry.NewRegistry()
	m.SetMetrics(reg)

	for i := 0; i < 6; i++ {
		g := "Male"
		if i%2 == 1 {
			g = "Female"
		}
		if err := m.Join(fmt.Sprintf("w%d", i), map[string]any{"Gender": g}, float64(i)/6); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Rescore("w0", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := m.Leave("w5"); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	want := map[string]int64{
		MetricEvents + `{type="join"}`:    6,
		MetricEvents + `{type="leave"}`:   1,
		MetricEvents + `{type="rescore"}`: 1,
		// Two structural rebuilds: one per group born.
		MetricRebuilds: 2,
	}
	for id, n := range want {
		if got := snap.Counters[id]; got != n {
			t.Errorf("%s = %d, want %d", id, got, n)
		}
	}
	// Each event once both groups exist touches one group: 1 distance and
	// 1 sum-tree update. The exact count depends on when the second group
	// was born; just pin that the delta counters moved in lockstep.
	if snap.Counters[MetricDistanceUpdates] == 0 {
		t.Error("distance-update counter stayed zero")
	}
	if snap.Counters[MetricDistanceUpdates] != snap.Counters[MetricSumTreeUpdates] {
		t.Errorf("distance updates %d != sumtree updates %d",
			snap.Counters[MetricDistanceUpdates], snap.Counters[MetricSumTreeUpdates])
	}
	if got := snap.Gauges[MetricWorkers]; got != float64(m.Workers()) {
		t.Errorf("workers gauge = %v, want %d", got, m.Workers())
	}
	if got := snap.Gauges[MetricGroups]; got != float64(m.Groups()) {
		t.Errorf("groups gauge = %v, want %d", got, m.Groups())
	}
}

// TestMetricsDisabled pins that an unattached monitor processes events
// normally — the zero monitorMetrics must be inert.
func TestMetricsDisabled(t *testing.T) {
	m := newMonitor(t, []string{"Gender"}, 0.5)
	m.SetMetrics(nil)
	if err := m.Join("w0", map[string]any{"Gender": "Male"}, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := m.Leave("w0"); err != nil {
		t.Fatal(err)
	}
}
