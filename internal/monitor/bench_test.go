package monitor

import (
	"fmt"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/rng"
)

// benchSchema induces exactly k groups through one categorical attribute,
// so the benchmarks isolate how per-event cost scales with group count.
func benchSchema(k int) *dataset.Schema {
	vals := make([]string, k)
	for i := range vals {
		vals[i] = fmt.Sprintf("g%02d", i)
	}
	return &dataset.Schema{
		Protected: []dataset.Attribute{dataset.Cat("Group", vals...)},
		Observed:  []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
}

// benchMonitor returns a warm monitor with k populated groups and the
// worker IDs to stream events against.
func benchMonitor(b *testing.B, k, perGroup int) (*Monitor, []string) {
	b.Helper()
	m, err := New(benchSchema(k), []string{"Group"}, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(uint64(k))
	ids := make([]string, 0, k*perGroup)
	for g := 0; g < k; g++ {
		for w := 0; w < perGroup; w++ {
			id := fmt.Sprintf("w%d-%d", g, w)
			prot := map[string]any{"Group": fmt.Sprintf("g%02d", g)}
			if err := m.Join(id, prot, r.Float64()); err != nil {
				b.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	return m, ids
}

// BenchmarkMonitorEvent measures one steady-state stream event — a worker
// re-score followed by an Unfairness read — across group counts. The delta
// path recomputes only the touched group's k-1 distances and O(log k²)
// sum-tree nodes, so per-event cost must grow linearly in k, not
// quadratically like the old full AveragePairwise rebuild (see
// BenchmarkMonitorRecompute for that baseline).
func BenchmarkMonitorEvent(b *testing.B) {
	for _, k := range []int{4, 8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("groups=%d", k), func(b *testing.B) {
			m, ids := benchMonitor(b, k, 8)
			r := rng.New(99)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Rescore(ids[i%len(ids)], r.Float64()); err != nil {
					b.Fatal(err)
				}
				if u := m.Unfairness(); u < 0 {
					b.Fatal("negative unfairness")
				}
			}
		})
	}
}

// BenchmarkMonitorRecompute is the from-scratch O(k²) baseline the old
// monitor paid on every event.
func BenchmarkMonitorRecompute(b *testing.B) {
	for _, k := range []int{4, 8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("groups=%d", k), func(b *testing.B) {
			m, _ := benchMonitor(b, k, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Recompute(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
