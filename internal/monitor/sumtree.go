package monitor

// sumTree is a fixed-shape segment tree holding the running sum of the
// distance triangle. Leaves are padded to a power of two, so the reduction
// order — and therefore the floating-point result — is a pure function of
// the leaf count and the leaf values: updating leaves in any order yields
// the same root as rebuilding the tree from the same values, which is the
// bit-identity contract between the monitor's delta path and Recompute.
// Updates cost O(log n); the root read is O(1).
type sumTree struct {
	size int       // leaf capacity, a power of two
	node []float64 // 1-indexed heap layout; node[1] is the root
}

func newSumTree(leaves []float64) *sumTree {
	size := 1
	for size < len(leaves) {
		size <<= 1
	}
	t := &sumTree{size: size, node: make([]float64, 2*size)}
	copy(t.node[size:], leaves)
	for i := size - 1; i >= 1; i-- {
		t.node[i] = t.node[2*i] + t.node[2*i+1]
	}
	return t
}

// set writes leaf i and refreshes the sums on its root path.
func (t *sumTree) set(i int, v float64) {
	j := t.size + i
	t.node[j] = v
	for j >>= 1; j >= 1; j >>= 1 {
		t.node[j] = t.node[2*j] + t.node[2*j+1]
	}
}

// root returns the sum of all leaves.
func (t *sumTree) root() float64 { return t.node[1] }
