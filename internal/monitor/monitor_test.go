package monitor

import (
	"fmt"
	"math"
	"testing"

	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/partition"
	"fairrank/internal/rng"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
)

func newMonitor(t *testing.T, attrs []string, threshold float64) *Monitor {
	t.Helper()
	m, err := New(simulate.PaperSchema(), attrs, 10, threshold)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func maleAttrs() map[string]any {
	return map[string]any{
		"Gender": "Male", "Country": "America", "YearOfBirth": 1980,
		"Language": "English", "Ethnicity": "White", "YearsExperience": 5,
	}
}

func femaleAttrs() map[string]any {
	a := maleAttrs()
	a["Gender"] = "Female"
	return a
}

func TestNewValidation(t *testing.T) {
	s := simulate.PaperSchema()
	if _, err := New(s, nil, 10, 0.1); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := New(s, []string{"Charisma"}, 10, 0.1); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := New(s, []string{"Gender"}, 10, -1); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := New(&dataset.Schema{}, []string{"Gender"}, 10, 0.1); err == nil {
		t.Error("invalid schema accepted")
	}
}

func TestJoinLeaveRescore(t *testing.T) {
	m := newMonitor(t, []string{"Gender"}, 0.5)
	if err := m.Join("w1", maleAttrs(), 0.9); err != nil {
		t.Fatal(err)
	}
	if err := m.Join("w1", maleAttrs(), 0.9); err == nil {
		t.Error("duplicate join accepted")
	}
	if err := m.Join("", maleAttrs(), 0.9); err == nil {
		t.Error("empty id accepted")
	}
	if err := m.Join("w2", femaleAttrs(), 0.1); err != nil {
		t.Fatal(err)
	}
	if m.Workers() != 2 || m.Groups() != 2 {
		t.Fatalf("workers=%d groups=%d", m.Workers(), m.Groups())
	}
	if err := m.Leave("w2"); err != nil {
		t.Fatal(err)
	}
	if m.Groups() != 1 {
		t.Fatalf("empty group not pruned: %d", m.Groups())
	}
	if err := m.Leave("w2"); err == nil {
		t.Error("double leave accepted")
	}
	if err := m.Rescore("w1", 0.2); err != nil {
		t.Fatal(err)
	}
	if err := m.Rescore("ghost", 0.5); err == nil {
		t.Error("rescore of unknown worker accepted")
	}
}

func TestJoinValidation(t *testing.T) {
	m := newMonitor(t, []string{"Gender", "YearOfBirth"}, 0.5)
	bad := maleAttrs()
	delete(bad, "Gender")
	if err := m.Join("w", bad, 0.5); err == nil {
		t.Error("missing attribute accepted")
	}
	bad2 := maleAttrs()
	bad2["Gender"] = 7
	if err := m.Join("w", bad2, 0.5); err == nil {
		t.Error("wrong type accepted")
	}
	bad3 := maleAttrs()
	bad3["Gender"] = "Robot"
	if err := m.Join("w", bad3, 0.5); err == nil {
		t.Error("unknown value accepted")
	}
	bad4 := maleAttrs()
	bad4["YearOfBirth"] = "old"
	if err := m.Join("w", bad4, 0.5); err == nil {
		t.Error("non-numeric year accepted")
	}
}

func TestUnfairnessTracksBias(t *testing.T) {
	m := newMonitor(t, []string{"Gender"}, 0.5)
	r := rng.New(1)
	// Biased regime: males ~0.9, females ~0.1.
	for i := 0; i < 100; i++ {
		m.Join(fmt.Sprintf("m%d", i), maleAttrs(), 0.85+0.1*r.Float64())
		m.Join(fmt.Sprintf("f%d", i), femaleAttrs(), 0.05+0.1*r.Float64())
	}
	u, breached := m.Alert()
	if u < 0.7 || !breached {
		t.Fatalf("biased stream: u=%v breached=%v", u, breached)
	}
	// Re-score everyone to the same distribution: unfairness collapses.
	for i := 0; i < 100; i++ {
		m.Rescore(fmt.Sprintf("m%d", i), 0.5)
		m.Rescore(fmt.Sprintf("f%d", i), 0.5)
	}
	u, breached = m.Alert()
	if u > 0.01 || breached {
		t.Fatalf("after equalization: u=%v breached=%v", u, breached)
	}
}

func TestMinWorkersWarmup(t *testing.T) {
	m := newMonitor(t, []string{"Gender"}, 0.2)
	m.SetMinWorkers(10)
	// Extreme but tiny sample: unfairness is high, alert must not fire.
	m.Join("m", maleAttrs(), 0.95)
	m.Join("f", femaleAttrs(), 0.05)
	u, breached := m.Alert()
	if u < 0.5 {
		t.Fatalf("u = %v, want high", u)
	}
	if breached {
		t.Fatal("alert fired during warm-up")
	}
	for i := 0; i < 10; i++ {
		m.Join(fmt.Sprintf("m%d", i), maleAttrs(), 0.95)
		m.Join(fmt.Sprintf("f%d", i), femaleAttrs(), 0.05)
	}
	if _, breached := m.Alert(); !breached {
		t.Fatal("alert suppressed after warm-up")
	}
}

func TestUnfairnessDegenerate(t *testing.T) {
	m := newMonitor(t, []string{"Gender"}, 0.5)
	if m.Unfairness() != 0 {
		t.Error("empty monitor unfairness != 0")
	}
	m.Join("w1", maleAttrs(), 0.5)
	if m.Unfairness() != 0 {
		t.Error("single-group unfairness != 0")
	}
}

func TestDriftDetection(t *testing.T) {
	// Start fair; let a biased cohort stream in; the alert must fire
	// somewhere along the way and the unfairness trace must rise.
	m := newMonitor(t, []string{"Gender"}, 0.3)
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		s := r.Float64()
		if i%2 == 0 {
			m.Join(fmt.Sprintf("a%d", i), maleAttrs(), s)
		} else {
			m.Join(fmt.Sprintf("b%d", i), femaleAttrs(), s)
		}
	}
	before, breached := m.Alert()
	if breached {
		t.Fatalf("fair stream already breached: %v", before)
	}
	for i := 0; i < 400; i++ {
		m.Join(fmt.Sprintf("new%d", i), maleAttrs(), 0.95)
	}
	after, breached := m.Alert()
	if after <= before {
		t.Fatalf("drift not reflected: %v -> %v", before, after)
	}
	if !breached {
		t.Fatalf("alert did not fire at %v (threshold 0.3)", after)
	}
}

// The incremental monitor must agree with a batch evaluation of the same
// grouping on the same data.
func TestMatchesBatchEvaluator(t *testing.T) {
	ds, err := simulate.PaperWorkers(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := scoring.NewLinear("f", map[string]float64{"LanguageTest": 0.5, "ApprovalRate": 0.5})
	e, err := core.NewEvaluator(ds, f, core.Config{Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	gender := ds.Schema().ProtectedIndex("Gender")
	country := ds.Schema().ProtectedIndex("Country")
	parts := partition.SplitAll(ds, partition.Split(ds, partition.Root(ds), gender), country)
	want := e.AvgPairwise(parts)

	m := newMonitor(t, []string{"Gender", "Country"}, 1)
	schema := ds.Schema()
	for i := 0; i < ds.N(); i++ {
		prot := map[string]any{}
		for a, attr := range schema.Protected {
			if attr.Kind == dataset.Categorical {
				prot[attr.Name] = attr.Values[ds.Code(a, i)]
			} else {
				prot[attr.Name] = ds.RawProtected(a, i)
			}
		}
		if err := m.Join(fmt.Sprintf("w%d", i), prot, f.Score(ds, i)); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Unfairness()
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("incremental %v != batch %v", got, want)
	}
}

func TestLeaveRestoresState(t *testing.T) {
	// Join then leave a cohort: unfairness returns to its prior value.
	m := newMonitor(t, []string{"Gender"}, 1)
	r := rng.New(3)
	for i := 0; i < 50; i++ {
		m.Join(fmt.Sprintf("m%d", i), maleAttrs(), r.Float64())
		m.Join(fmt.Sprintf("f%d", i), femaleAttrs(), r.Float64())
	}
	before := m.Unfairness()
	for i := 0; i < 30; i++ {
		m.Join(fmt.Sprintf("tmp%d", i), maleAttrs(), 0.99)
	}
	for i := 0; i < 30; i++ {
		if err := m.Leave(fmt.Sprintf("tmp%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	after := m.Unfairness()
	if math.Abs(before-after) > 1e-12 {
		t.Fatalf("join+leave not idempotent: %v vs %v", before, after)
	}
}
