// Package scoring implements the task-qualification scoring functions of
// the paper: linear combinations f(w) = Σ αᵢ·bᵢ of observed attributes
// (Definition 1), plus the rule-based "unfair by design" functions of the
// qualitative study (f6–f9), and adapters for arbitrary user functions.
//
// All scores are in [0,1]. Observed attribute values are normalized into
// [0,1] by their schema range before weighting, which is what makes the
// paper's f = α·LanguageTest + (1-α)·ApprovalRate land in [0,1] even though
// both attributes live in [25,100].
package scoring

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"fairrank/internal/dataset"
)

// Func scores workers of a dataset. Implementations must be deterministic:
// Score must return the same value for the same (dataset, worker) pair.
type Func interface {
	// Name identifies the function in reports and experiment tables.
	Name() string
	// Score returns worker i's task-qualification score in [0,1].
	Score(ds *dataset.Dataset, i int) float64
}

// ScoreFunc adapts a plain function into a Func.
type ScoreFunc struct {
	// FuncName is returned by Name.
	FuncName string
	// Fn computes the score.
	Fn func(ds *dataset.Dataset, i int) float64
}

// Name implements Func.
func (s ScoreFunc) Name() string { return s.FuncName }

// Score implements Func.
func (s ScoreFunc) Score(ds *dataset.Dataset, i int) float64 { return s.Fn(ds, i) }

// Linear is the paper's scoring function: a weighted sum of observed
// attributes, each normalized to [0,1] by its schema range. Weights must be
// non-negative; they are normalized to sum to 1 so the score stays in [0,1].
// A weight of zero means the attribute is irrelevant to the user's ranking.
type Linear struct {
	name    string
	weights map[string]float64 // by observed attribute name, normalized
	// terms is the weight table in sorted attribute order — the fixed
	// summation order both Score and ScoreColumn use, so per-row and
	// columnar evaluation are bit-identical and deterministic regardless
	// of map iteration order.
	terms []linearTerm
}

type linearTerm struct {
	attr string
	w    float64
}

// NewLinear builds a linear scoring function from attribute-name → weight.
// At least one weight must be positive; negative or NaN weights are
// rejected. Attribute existence is checked lazily against the dataset at
// scoring time via Bind, or eagerly with Validate.
func NewLinear(name string, weights map[string]float64) (*Linear, error) {
	if len(weights) == 0 {
		return nil, errors.New("scoring: linear function needs at least one weight")
	}
	total := 0.0
	for attr, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("scoring: invalid weight %v for %q", w, attr)
		}
		total += w
	}
	if total == 0 {
		return nil, errors.New("scoring: all weights are zero")
	}
	norm := make(map[string]float64, len(weights))
	terms := make([]linearTerm, 0, len(weights))
	for attr, w := range weights {
		norm[attr] = w / total
		terms = append(terms, linearTerm{attr: attr, w: w / total})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].attr < terms[j].attr })
	return &Linear{name: name, weights: norm, terms: terms}, nil
}

// Name implements Func.
func (l *Linear) Name() string { return l.name }

// Weights returns the normalized weights (summing to 1).
func (l *Linear) Weights() map[string]float64 {
	out := make(map[string]float64, len(l.weights))
	for k, v := range l.weights {
		out[k] = v
	}
	return out
}

// Validate checks that every weighted attribute exists in the schema as an
// observed attribute.
func (l *Linear) Validate(schema *dataset.Schema) error {
	for attr := range l.weights {
		if schema.ObservedIndex(attr) < 0 {
			return fmt.Errorf("scoring: %q is not an observed attribute", attr)
		}
	}
	return nil
}

// Score implements Func. Weighted attributes missing from the dataset's
// schema contribute zero (Validate catches this up front when wanted).
// Terms accumulate in sorted attribute order — the same order ScoreColumn
// uses — so both paths round identically.
func (l *Linear) Score(ds *dataset.Dataset, i int) float64 {
	s := 0.0
	schema := ds.Schema()
	for _, t := range l.terms {
		if t.w == 0 {
			continue
		}
		a := schema.ObservedIndex(t.attr)
		if a < 0 {
			continue
		}
		def := schema.Observed[a]
		v := ds.Observed(a, i)
		s += t.w * normalize(v, def.Min, def.Max)
	}
	return clamp01(s)
}

// ScoreColumn computes the whole score column in one fused pass per
// weighted attribute, reading each observed column block directly (for
// snapshot-backed datasets these are the mapped blocks — no per-row
// accessor, no copy). Per row it accumulates terms in the same sorted
// order as Score, so the result is bit-identical to calling Score for
// every worker.
func (l *Linear) ScoreColumn(ds *dataset.Dataset) []float64 {
	out := make([]float64, ds.N())
	schema := ds.Schema()
	for _, t := range l.terms {
		if t.w == 0 {
			continue
		}
		a := schema.ObservedIndex(t.attr)
		if a < 0 {
			continue
		}
		def := schema.Observed[a]
		col := ds.ObservedColumn(a)
		for i, v := range col {
			out[i] += t.w * normalize(v, def.Min, def.Max)
		}
	}
	for i, v := range out {
		out[i] = clamp01(v)
	}
	return out
}

// String renders the function as its formula, with attributes sorted for
// stable output.
func (l *Linear) String() string {
	attrs := make([]string, 0, len(l.weights))
	for a := range l.weights {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	parts := make([]string, 0, len(attrs))
	for _, a := range attrs {
		parts = append(parts, fmt.Sprintf("%.3g·%s", l.weights[a], a))
	}
	return l.name + " = " + strings.Join(parts, " + ")
}

func normalize(v, min, max float64) float64 {
	if !(max > min) {
		return 0
	}
	return clamp01((v - min) / (max - min))
}

func clamp01(v float64) float64 {
	switch {
	case math.IsNaN(v), v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// ColumnScorer is implemented by scoring functions that can materialize
// the whole score column in fused columnar passes. Implementations must be
// bit-identical to row-at-a-time Score evaluation; Scores prefers this
// path when available.
type ColumnScorer interface {
	ScoreColumn(ds *dataset.Dataset) []float64
}

// Scores evaluates f for every worker and returns the full score column,
// scanning column blocks directly when f supports it.
func Scores(ds *dataset.Dataset, f Func) []float64 {
	if cs, ok := f.(ColumnScorer); ok {
		return cs.ScoreColumn(ds)
	}
	out := make([]float64, ds.N())
	for i := range out {
		out[i] = f.Score(ds, i)
	}
	return out
}
