package scoring

import (
	"errors"
	"fmt"

	"fairrank/internal/dataset"
)

// Predicate decides whether a rule applies to a worker.
type Predicate func(ds *dataset.Dataset, i int) bool

// AttrIs matches workers whose protected attribute `name` has one of the
// given categorical values. Workers match nothing if the attribute is
// missing or not categorical.
func AttrIs(name string, values ...string) Predicate {
	return func(ds *dataset.Dataset, i int) bool {
		a := ds.Schema().ProtectedIndex(name)
		if a < 0 || ds.Schema().Protected[a].Kind != dataset.Categorical {
			return false
		}
		label := ds.Schema().Protected[a].Values[ds.Code(a, i)]
		for _, v := range values {
			if v == label {
				return true
			}
		}
		return false
	}
}

// AttrInRange matches workers whose numeric protected attribute `name` has
// a raw value in [lo, hi).
func AttrInRange(name string, lo, hi float64) Predicate {
	return func(ds *dataset.Dataset, i int) bool {
		a := ds.Schema().ProtectedIndex(name)
		if a < 0 || ds.Schema().Protected[a].Kind != dataset.Numeric {
			return false
		}
		v := ds.RawProtected(a, i)
		return v >= lo && v < hi
	}
}

// And matches when all predicates match.
func And(ps ...Predicate) Predicate {
	return func(ds *dataset.Dataset, i int) bool {
		for _, p := range ps {
			if !p(ds, i) {
				return false
			}
		}
		return true
	}
}

// Or matches when any predicate matches.
func Or(ps ...Predicate) Predicate {
	return func(ds *dataset.Dataset, i int) bool {
		for _, p := range ps {
			if p(ds, i) {
				return true
			}
		}
		return false
	}
}

// Not inverts a predicate.
func Not(p Predicate) Predicate {
	return func(ds *dataset.Dataset, i int) bool { return !p(ds, i) }
}

// Any matches every worker; useful as a default rule.
func Any() Predicate {
	return func(*dataset.Dataset, int) bool { return true }
}

// Rule assigns workers matching When a score drawn uniformly from [Lo, Hi).
type Rule struct {
	// When selects the workers this rule applies to.
	When Predicate
	// Lo and Hi bound the score range assigned to matching workers.
	Lo, Hi float64
}

// RuleFunc is a rule-based scoring function: the first matching rule
// determines the worker's score range, and the concrete score is a
// deterministic pseudo-random draw from that range keyed on (seed, worker).
// This is how the paper's "unfair by design" functions f6–f9 are built:
// e.g. f6(w) > 0.8 if w is male and f6(w) < 0.2 if w is female.
type RuleFunc struct {
	name  string
	rules []Rule
	seed  uint64
}

// NewRuleFunc builds a rule-based scoring function. Rules are evaluated in
// order; workers matching no rule score 0. Each rule's range must satisfy
// 0 <= Lo < Hi <= 1.
func NewRuleFunc(name string, seed uint64, rules []Rule) (*RuleFunc, error) {
	if len(rules) == 0 {
		return nil, errors.New("scoring: rule function needs at least one rule")
	}
	for k, r := range rules {
		if r.When == nil {
			return nil, fmt.Errorf("scoring: rule %d has nil predicate", k)
		}
		if !(r.Lo >= 0 && r.Lo < r.Hi && r.Hi <= 1) {
			return nil, fmt.Errorf("scoring: rule %d has invalid range [%g,%g)", k, r.Lo, r.Hi)
		}
	}
	return &RuleFunc{name: name, rules: rules, seed: seed}, nil
}

// Name implements Func.
func (r *RuleFunc) Name() string { return r.name }

// Score implements Func. The draw is deterministic in (seed, i) so repeated
// scoring of the same worker always yields the same value.
func (r *RuleFunc) Score(ds *dataset.Dataset, i int) float64 {
	for _, rule := range r.rules {
		if rule.When(ds, i) {
			u := hashUnit(r.seed, uint64(i))
			return rule.Lo + u*(rule.Hi-rule.Lo)
		}
	}
	return 0
}

// hashUnit maps (seed, x) to a uniform value in [0,1) via splitmix64.
func hashUnit(seed, x uint64) float64 {
	z := seed ^ (x+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
