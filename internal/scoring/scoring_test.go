package scoring

import (
	"math"
	"strings"
	"testing"

	"fairrank/internal/dataset"
)

func testSchema() *dataset.Schema {
	return &dataset.Schema{
		Protected: []dataset.Attribute{
			dataset.Cat("Gender", "Male", "Female"),
			dataset.Cat("Country", "America", "India", "Other"),
			dataset.Num("YearOfBirth", 1950, 2010, 5),
		},
		Observed: []dataset.Attribute{
			dataset.Num("LanguageTest", 25, 100, 1),
			dataset.Num("ApprovalRate", 25, 100, 1),
		},
	}
}

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder(testSchema())
	add := func(id, gender, country string, year int, lang, appr float64) {
		b.Add(id,
			map[string]any{"Gender": gender, "Country": country, "YearOfBirth": year},
			map[string]any{"LanguageTest": lang, "ApprovalRate": appr})
	}
	add("w0", "Male", "America", 1980, 100, 25)  // lang norm 1, appr norm 0
	add("w1", "Female", "India", 1990, 25, 100)  // lang norm 0, appr norm 1
	add("w2", "Male", "Other", 1960, 62.5, 62.5) // both norm 0.5
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewLinearValidation(t *testing.T) {
	if _, err := NewLinear("f", nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewLinear("f", map[string]float64{"a": -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewLinear("f", map[string]float64{"a": math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
	if _, err := NewLinear("f", map[string]float64{"a": math.Inf(1)}); err == nil {
		t.Error("Inf weight accepted")
	}
	if _, err := NewLinear("f", map[string]float64{"a": 0, "b": 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
}

func TestLinearNormalizesWeights(t *testing.T) {
	f, err := NewLinear("f", map[string]float64{"LanguageTest": 2, "ApprovalRate": 2})
	if err != nil {
		t.Fatal(err)
	}
	w := f.Weights()
	if math.Abs(w["LanguageTest"]-0.5) > 1e-12 || math.Abs(w["ApprovalRate"]-0.5) > 1e-12 {
		t.Fatalf("weights not normalized: %v", w)
	}
}

func TestLinearScore(t *testing.T) {
	ds := testData(t)
	f, _ := NewLinear("f", map[string]float64{"LanguageTest": 0.7, "ApprovalRate": 0.3})
	cases := []struct {
		i    int
		want float64
	}{
		{0, 0.7}, // 0.7*1 + 0.3*0
		{1, 0.3}, // 0.7*0 + 0.3*1
		{2, 0.5},
	}
	for _, c := range cases {
		if got := f.Score(ds, c.i); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Score(w%d) = %v, want %v", c.i, got, c.want)
		}
	}
}

func TestLinearSingleAttribute(t *testing.T) {
	// The paper's f4 (α=1): LanguageTest only.
	ds := testData(t)
	f, _ := NewLinear("f4", map[string]float64{"LanguageTest": 1})
	if got := f.Score(ds, 0); got != 1 {
		t.Errorf("f4(w0) = %v, want 1", got)
	}
	if got := f.Score(ds, 1); got != 0 {
		t.Errorf("f4(w1) = %v, want 0", got)
	}
}

func TestLinearValidateAgainstSchema(t *testing.T) {
	f, _ := NewLinear("f", map[string]float64{"LanguageTest": 1})
	if err := f.Validate(testSchema()); err != nil {
		t.Errorf("valid attr rejected: %v", err)
	}
	g, _ := NewLinear("g", map[string]float64{"Charisma": 1})
	if err := g.Validate(testSchema()); err == nil {
		t.Error("unknown attr accepted")
	}
}

func TestLinearMissingAttributeScoresZeroContribution(t *testing.T) {
	ds := testData(t)
	f, _ := NewLinear("f", map[string]float64{"Charisma": 1})
	if got := f.Score(ds, 0); got != 0 {
		t.Errorf("missing-attr score = %v, want 0", got)
	}
}

func TestLinearString(t *testing.T) {
	f, _ := NewLinear("f1", map[string]float64{"B": 0.5, "A": 0.5})
	s := f.String()
	if !strings.HasPrefix(s, "f1 = ") || strings.Index(s, "A") > strings.Index(s, "B") {
		t.Errorf("String = %q", s)
	}
}

func TestScoreFuncAdapter(t *testing.T) {
	f := ScoreFunc{FuncName: "const", Fn: func(*dataset.Dataset, int) float64 { return 0.4 }}
	if f.Name() != "const" {
		t.Error("Name wrong")
	}
	ds := testData(t)
	if f.Score(ds, 0) != 0.4 {
		t.Error("Score wrong")
	}
}

func TestScoresColumn(t *testing.T) {
	ds := testData(t)
	f, _ := NewLinear("f", map[string]float64{"LanguageTest": 1})
	col := Scores(ds, f)
	if len(col) != 3 || col[0] != 1 || col[1] != 0 || col[2] != 0.5 {
		t.Fatalf("Scores = %v", col)
	}
}

func TestPredicates(t *testing.T) {
	ds := testData(t)
	male := AttrIs("Gender", "Male")
	if !male(ds, 0) || male(ds, 1) {
		t.Error("AttrIs wrong")
	}
	multi := AttrIs("Country", "America", "Other")
	if !multi(ds, 0) || multi(ds, 1) || !multi(ds, 2) {
		t.Error("multi-value AttrIs wrong")
	}
	if AttrIs("Nope", "x")(ds, 0) {
		t.Error("missing attribute matched")
	}
	if AttrIs("YearOfBirth", "x")(ds, 0) {
		t.Error("numeric attribute matched by AttrIs")
	}
	young := AttrInRange("YearOfBirth", 1985, 2010)
	if young(ds, 0) || !young(ds, 1) {
		t.Error("AttrInRange wrong")
	}
	if AttrInRange("Gender", 0, 1)(ds, 0) {
		t.Error("categorical attribute matched by AttrInRange")
	}
	if AttrInRange("Nope", 0, 1)(ds, 0) {
		t.Error("missing numeric attribute matched")
	}
	ma := And(male, AttrIs("Country", "America"))
	if !ma(ds, 0) || ma(ds, 2) {
		t.Error("And wrong")
	}
	either := Or(AttrIs("Country", "India"), AttrIs("Country", "Other"))
	if either(ds, 0) || !either(ds, 1) || !either(ds, 2) {
		t.Error("Or wrong")
	}
	if Not(male)(ds, 0) || !Not(male)(ds, 1) {
		t.Error("Not wrong")
	}
	if !Any()(ds, 0) {
		t.Error("Any wrong")
	}
}

func TestNewRuleFuncValidation(t *testing.T) {
	if _, err := NewRuleFunc("f", 1, nil); err == nil {
		t.Error("no rules accepted")
	}
	if _, err := NewRuleFunc("f", 1, []Rule{{When: nil, Lo: 0, Hi: 1}}); err == nil {
		t.Error("nil predicate accepted")
	}
	bad := [][2]float64{{-0.1, 0.5}, {0.5, 0.2}, {0.5, 0.5}, {0.5, 1.5}}
	for _, r := range bad {
		if _, err := NewRuleFunc("f", 1, []Rule{{When: Any(), Lo: r[0], Hi: r[1]}}); err == nil {
			t.Errorf("range [%v,%v) accepted", r[0], r[1])
		}
	}
}

func TestRuleFuncGenderBias(t *testing.T) {
	// The paper's f6: males > 0.8, females < 0.2.
	ds := testData(t)
	f6, err := NewRuleFunc("f6", 42, []Rule{
		{When: AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := f6.Score(ds, 0); s < 0.8 || s >= 1 {
		t.Errorf("male score = %v", s)
	}
	if s := f6.Score(ds, 1); s < 0 || s >= 0.2 {
		t.Errorf("female score = %v", s)
	}
	if f6.Name() != "f6" {
		t.Error("Name wrong")
	}
}

func TestRuleFuncDeterministic(t *testing.T) {
	ds := testData(t)
	f, _ := NewRuleFunc("f", 7, []Rule{{When: Any(), Lo: 0, Hi: 1}})
	for i := 0; i < ds.N(); i++ {
		if f.Score(ds, i) != f.Score(ds, i) {
			t.Fatalf("score of worker %d not deterministic", i)
		}
	}
	g, _ := NewRuleFunc("g", 8, []Rule{{When: Any(), Lo: 0, Hi: 1}})
	if f.Score(ds, 0) == g.Score(ds, 0) {
		t.Error("different seeds gave identical scores (suspicious)")
	}
}

func TestRuleFuncFirstMatchWins(t *testing.T) {
	ds := testData(t)
	f, _ := NewRuleFunc("f", 1, []Rule{
		{When: AttrIs("Gender", "Male"), Lo: 0.9, Hi: 1.0},
		{When: Any(), Lo: 0.0, Hi: 0.1},
	})
	if s := f.Score(ds, 0); s < 0.9 {
		t.Errorf("first rule did not win: %v", s)
	}
	if s := f.Score(ds, 1); s >= 0.1 {
		t.Errorf("fallback rule not applied: %v", s)
	}
}

func TestRuleFuncNoMatchScoresZero(t *testing.T) {
	ds := testData(t)
	f, _ := NewRuleFunc("f", 1, []Rule{{When: AttrIs("Gender", "Robot"), Lo: 0.5, Hi: 1}})
	if s := f.Score(ds, 0); s != 0 {
		t.Errorf("unmatched worker score = %v, want 0", s)
	}
}

func TestHashUnitRange(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		u := hashUnit(123, i)
		if u < 0 || u >= 1 {
			t.Fatalf("hashUnit out of range: %v", u)
		}
	}
}
