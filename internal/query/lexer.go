// Package query implements the requester-side query language of the
// marketplace: a small boolean expression language over worker attributes,
// used to select the eligible candidates before ranking ("a person who
// needs to hire someone for a job can formulate a query and is shown a
// ranked list of people").
//
// Grammar (case-insensitive keywords):
//
//	expr       = or
//	or         = and { "OR" and }
//	and        = unary { "AND" unary }
//	unary      = "NOT" unary | "(" expr ")" | comparison
//	comparison = ident op value | ident "IN" "(" value {"," value} ")"
//	op         = "=" | "!=" | "<" | "<=" | ">" | ">="
//	value      = 'string' | number
//
// Examples:
//
//	Gender = 'Female' AND YearsExperience >= 5
//	Country IN ('America', 'India') OR NOT (LanguageTest < 60)
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokOp     // = != < <= > >=
	tokAnd    // AND
	tokOr     // OR
	tokNot    // NOT
	tokIn     // IN
	tokLParen // (
	tokRParen // )
	tokComma  // ,
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokOp:
		return "operator"
	case tokAnd:
		return "AND"
	case tokOr:
		return "OR"
	case tokNot:
		return "NOT"
	case tokIn:
		return "IN"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokComma:
		return ","
	default:
		return "token"
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes the input, returning an error with position on malformed
// input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("query: unterminated string at position %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : j], i})
			i = j + 1
		case c == '=', c == '<', c == '>', c == '!':
			op := string(c)
			if i+1 < len(input) && input[i+1] == '=' {
				op += "="
				i++
			}
			if op == "!" {
				return nil, fmt.Errorf("query: stray '!' at position %d (did you mean !=?)", i)
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case c >= '0' && c <= '9' || c == '-' || c == '.':
			j := i
			if input[j] == '-' {
				j++
			}
			digits := false
			for j < len(input) && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				digits = true
				j++
			}
			if !digits {
				return nil, fmt.Errorf("query: malformed number at position %d", i)
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(input) && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			switch strings.ToUpper(word) {
			case "AND":
				toks = append(toks, token{tokAnd, word, i})
			case "OR":
				toks = append(toks, token{tokOr, word, i})
			case "NOT":
				toks = append(toks, token{tokNot, word, i})
			case "IN":
				toks = append(toks, token{tokIn, word, i})
			default:
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
