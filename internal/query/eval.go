package query

import (
	"fmt"
	"math"

	"fairrank/internal/dataset"
)

// Compiled is a query bound to a schema, ready to evaluate against workers
// of datasets with that schema.
type Compiled struct {
	expr Expr
	eval func(ds *dataset.Dataset, i int) bool
}

// Compile binds a parsed expression to a schema, resolving attribute names
// and checking type compatibility (string comparisons need categorical
// attributes, numeric comparisons need numeric protected or observed
// attributes).
func Compile(e Expr, schema *dataset.Schema) (*Compiled, error) {
	eval, err := compile(e, schema)
	if err != nil {
		return nil, err
	}
	return &Compiled{expr: e, eval: eval}, nil
}

// MustCompile parses and compiles in one step, for statically known
// queries in tests and examples; it panics on error.
func MustCompile(input string, schema *dataset.Schema) *Compiled {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	c, err := Compile(e, schema)
	if err != nil {
		panic(err)
	}
	return c
}

// String returns the canonical form of the compiled query.
func (c *Compiled) String() string { return c.expr.String() }

// Match reports whether worker i of ds satisfies the query.
func (c *Compiled) Match(ds *dataset.Dataset, i int) bool { return c.eval(ds, i) }

// Filter returns the indices of all workers satisfying the query, in row
// order.
func (c *Compiled) Filter(ds *dataset.Dataset) []int {
	var out []int
	for i := 0; i < ds.N(); i++ {
		if c.eval(ds, i) {
			out = append(out, i)
		}
	}
	return out
}

// Select returns the sub-population satisfying the query as a new Dataset.
// It fails if no worker matches.
func (c *Compiled) Select(ds *dataset.Dataset) (*dataset.Dataset, error) {
	idx := c.Filter(ds)
	if len(idx) == 0 {
		return nil, fmt.Errorf("query: no workers match %s", c)
	}
	return ds.Subset(idx)
}

// attrRef abstracts how an attribute's value is fetched for comparison.
type attrRef struct {
	categorical bool
	// For categorical: the protected attribute index and its value list.
	protIdx int
	values  []string
	// For numeric: fetch the raw value (protected raw or observed).
	num func(ds *dataset.Dataset, i int) float64
}

func resolveAttr(name string, schema *dataset.Schema) (attrRef, error) {
	if pi := schema.ProtectedIndex(name); pi >= 0 {
		a := schema.Protected[pi]
		if a.Kind == dataset.Categorical {
			return attrRef{categorical: true, protIdx: pi, values: a.Values}, nil
		}
		return attrRef{num: func(ds *dataset.Dataset, i int) float64 {
			return ds.RawProtected(pi, i)
		}}, nil
	}
	if oi := schema.ObservedIndex(name); oi >= 0 {
		return attrRef{num: func(ds *dataset.Dataset, i int) float64 {
			return ds.Observed(oi, i)
		}}, nil
	}
	return attrRef{}, fmt.Errorf("query: unknown attribute %q", name)
}

func compile(e Expr, schema *dataset.Schema) (func(*dataset.Dataset, int) bool, error) {
	switch x := e.(type) {
	case *BinaryExpr:
		l, err := compile(x.Left, schema)
		if err != nil {
			return nil, err
		}
		r, err := compile(x.Right, schema)
		if err != nil {
			return nil, err
		}
		if x.Op == "AND" {
			return func(ds *dataset.Dataset, i int) bool { return l(ds, i) && r(ds, i) }, nil
		}
		return func(ds *dataset.Dataset, i int) bool { return l(ds, i) || r(ds, i) }, nil

	case *NotExpr:
		inner, err := compile(x.Inner, schema)
		if err != nil {
			return nil, err
		}
		return func(ds *dataset.Dataset, i int) bool { return !inner(ds, i) }, nil

	case *CompareExpr:
		ref, err := resolveAttr(x.Attr, schema)
		if err != nil {
			return nil, err
		}
		if x.IsString {
			if !ref.categorical {
				return nil, fmt.Errorf("query: attribute %q is numeric; compare it with a number", x.Attr)
			}
			code := -1
			for v, label := range ref.values {
				if label == x.Str {
					code = v
					break
				}
			}
			if code < 0 {
				return nil, fmt.Errorf("query: attribute %q has no value %q", x.Attr, x.Str)
			}
			pi := ref.protIdx
			if x.Op == "=" {
				return func(ds *dataset.Dataset, i int) bool { return ds.Code(pi, i) == code }, nil
			}
			return func(ds *dataset.Dataset, i int) bool { return ds.Code(pi, i) != code }, nil
		}
		if ref.categorical {
			return nil, fmt.Errorf("query: attribute %q is categorical; compare it with a quoted string", x.Attr)
		}
		get, v := ref.num, x.Num
		switch x.Op {
		case "=":
			return func(ds *dataset.Dataset, i int) bool { return get(ds, i) == v }, nil
		case "!=":
			return func(ds *dataset.Dataset, i int) bool { return get(ds, i) != v }, nil
		case "<":
			return func(ds *dataset.Dataset, i int) bool { return get(ds, i) < v }, nil
		case "<=":
			return func(ds *dataset.Dataset, i int) bool { return get(ds, i) <= v }, nil
		case ">":
			return func(ds *dataset.Dataset, i int) bool { return get(ds, i) > v }, nil
		case ">=":
			return func(ds *dataset.Dataset, i int) bool { return get(ds, i) >= v }, nil
		default:
			return nil, fmt.Errorf("query: unknown operator %q", x.Op)
		}

	case *InExpr:
		ref, err := resolveAttr(x.Attr, schema)
		if err != nil {
			return nil, err
		}
		if x.Numeric {
			if ref.categorical {
				return nil, fmt.Errorf("query: attribute %q is categorical; IN list must hold strings", x.Attr)
			}
			set := map[float64]bool{}
			for _, n := range x.Nums {
				if math.IsNaN(n) {
					return nil, fmt.Errorf("query: NaN in IN list")
				}
				set[n] = true
			}
			get := ref.num
			return func(ds *dataset.Dataset, i int) bool { return set[get(ds, i)] }, nil
		}
		if !ref.categorical {
			return nil, fmt.Errorf("query: attribute %q is numeric; IN list must hold numbers", x.Attr)
		}
		codes := map[int]bool{}
		for _, s := range x.Strs {
			found := false
			for v, label := range ref.values {
				if label == s {
					codes[v] = true
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("query: attribute %q has no value %q", x.Attr, s)
			}
		}
		pi := ref.protIdx
		return func(ds *dataset.Dataset, i int) bool { return codes[ds.Code(pi, i)] }, nil

	default:
		return nil, fmt.Errorf("query: unknown expression type %T", e)
	}
}
