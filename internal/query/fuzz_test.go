package query

import (
	"testing"

	"fairrank/internal/simulate"
)

// FuzzParse ensures the lexer/parser never panic and that any expression
// that parses also compiles-or-errors cleanly and round-trips through its
// canonical string form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"Gender = 'Male'",
		"Gender = 'Female' AND YearsExperience >= 5",
		"Country IN ('America', 'India') OR NOT (LanguageTest < 60)",
		"x IN (1, 2, 3)",
		"NOT NOT a != 'b'",
		"a = -1.5",
		"(((a = 1)))",
		"a = 1 AND b = 2 OR c = 3",
		"", "(", "'", "= =", "IN IN", "a <",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := simulate.PaperSchema()
	f.Fuzz(func(t *testing.T, input string) {
		e, err := Parse(input)
		if err != nil {
			return
		}
		// Canonical form must re-parse to the same canonical form.
		canon := e.String()
		e2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
		}
		if e2.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, e2.String())
		}
		// Compile must never panic; errors are fine.
		_, _ = Compile(e, schema)
	})
}
