package query

import (
	"strings"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/simulate"
)

func schema() *dataset.Schema { return simulate.PaperSchema() }

func pop(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := simulate.PaperWorkers(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("Gender = 'Male' AND YearsExperience >= 5")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokOp, tokString, tokAnd, tokIdent, tokOp, tokNumber, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("%d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d kind = %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{"Gender = 'unterminated", "a @ b", "x = !", "x = -"}
	for _, c := range cases {
		if _, err := lex(c); err == nil {
			t.Errorf("lex(%q) accepted", c)
		}
	}
}

func TestLexNegativeNumber(t *testing.T) {
	toks, err := lex("x < -1.5")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].kind != tokNumber || toks[2].text != "-1.5" {
		t.Fatalf("token = %+v", toks[2])
	}
}

func TestParseCanonicalForms(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Gender = 'Male'", "Gender = 'Male'"},
		{"a >= 5 AND b < 3", "(a >= 5 AND b < 3)"},
		{"a = 1 OR b = 2 AND c = 3", "(a = 1 OR (b = 2 AND c = 3))"}, // AND binds tighter
		{"(a = 1 OR b = 2) AND c = 3", "((a = 1 OR b = 2) AND c = 3)"},
		{"NOT a = 1", "(NOT a = 1)"},
		{"not not a = 1", "(NOT (NOT a = 1))"},
		{"Country IN ('America', 'India')", "Country IN ('America', 'India')"},
		{"x IN (1, 2, 3)", "x IN (1, 2, 3)"},
		{"a != 'b'", "a != 'b'"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if e.String() != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.in, e, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"Gender =",
		"= 'Male'",
		"Gender < 'Male'", // relational op on string
		"Gender 'Male'",
		"(a = 1",
		"a = 1)",
		"a IN ()",
		"a IN (1, 'x')", // mixed list
		"a IN ('x', 1)",
		"a = 1 AND",
		"a = 1 b = 2",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) accepted", c)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	s := schema()
	cases := []string{
		"Charisma = 5",                  // unknown attribute
		"Gender = 5",                    // categorical vs number
		"Gender != 5",                   //
		"YearsExperience = 'five'",      // numeric vs string
		"Gender = 'Robot'",              // unknown categorical value
		"Gender IN (1, 2)",              // numeric IN over categorical
		"YearsExperience IN ('a', 'b')", // string IN over numeric
		"Country IN ('America', 'Atlantis')",
	}
	for _, c := range cases {
		e, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c, err)
		}
		if _, err := Compile(e, s); err == nil {
			t.Errorf("Compile(%q) accepted", c)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile of invalid query did not panic")
		}
	}()
	MustCompile("nope nope", schema())
}

func TestFilterSemantics(t *testing.T) {
	ds := pop(t)
	s := ds.Schema()
	gender := s.ProtectedIndex("Gender")
	country := s.ProtectedIndex("Country")
	exp := s.ProtectedIndex("YearsExperience")

	q := MustCompile("Gender = 'Female' AND YearsExperience >= 5", s)
	idx := q.Filter(ds)
	if len(idx) == 0 {
		t.Fatal("no matches")
	}
	for _, i := range idx {
		if s.Protected[gender].Values[ds.Code(gender, i)] != "Female" {
			t.Fatalf("worker %d is not female", i)
		}
		if ds.RawProtected(exp, i) < 5 {
			t.Fatalf("worker %d has experience %v", i, ds.RawProtected(exp, i))
		}
	}
	// Complement check: matched + negated-match = all.
	neg := MustCompile("NOT (Gender = 'Female' AND YearsExperience >= 5)", s)
	if len(idx)+len(neg.Filter(ds)) != ds.N() {
		t.Fatal("query and its negation do not partition the population")
	}

	in := MustCompile("Country IN ('America', 'India')", s)
	for _, i := range in.Filter(ds) {
		c := s.Protected[country].Values[ds.Code(country, i)]
		if c != "America" && c != "India" {
			t.Fatalf("worker %d country %s", i, c)
		}
	}

	// OR distributes as expected.
	a := MustCompile("Country = 'America'", s).Filter(ds)
	b := MustCompile("Country = 'India'", s).Filter(ds)
	both := MustCompile("Country = 'America' OR Country = 'India'", s).Filter(ds)
	if len(both) != len(a)+len(b) {
		t.Fatalf("OR count %d != %d + %d", len(both), len(a), len(b))
	}
}

func TestObservedAttributeFilter(t *testing.T) {
	ds := pop(t)
	s := ds.Schema()
	q := MustCompile("LanguageTest >= 80", s)
	idx := q.Filter(ds)
	obs := s.ObservedIndex("LanguageTest")
	for _, i := range idx {
		if ds.Observed(obs, i) < 80 {
			t.Fatalf("worker %d LanguageTest %v", i, ds.Observed(obs, i))
		}
	}
	if len(idx) == 0 || len(idx) == ds.N() {
		t.Fatalf("degenerate filter: %d of %d", len(idx), ds.N())
	}
}

func TestNumericOperators(t *testing.T) {
	ds := pop(t)
	s := ds.Schema()
	lt := MustCompile("YearOfBirth < 1980", s).Filter(ds)
	ge := MustCompile("YearOfBirth >= 1980", s).Filter(ds)
	if len(lt)+len(ge) != ds.N() {
		t.Fatal("< and >= do not partition")
	}
	le := MustCompile("YearOfBirth <= 1980", s).Filter(ds)
	gt := MustCompile("YearOfBirth > 1980", s).Filter(ds)
	if len(le)+len(gt) != ds.N() {
		t.Fatal("<= and > do not partition")
	}
	eq := MustCompile("YearsExperience = 10", s).Filter(ds)
	ne := MustCompile("YearsExperience != 10", s).Filter(ds)
	if len(eq)+len(ne) != ds.N() {
		t.Fatal("= and != do not partition")
	}
}

func TestSelectSubset(t *testing.T) {
	ds := pop(t)
	s := ds.Schema()
	q := MustCompile("Gender = 'Male'", s)
	sub, err := q.Select(ds)
	if err != nil {
		t.Fatal(err)
	}
	gender := s.ProtectedIndex("Gender")
	for i := 0; i < sub.N(); i++ {
		if sub.Code(gender, i) != 0 {
			t.Fatal("subset contains a non-male worker")
		}
	}
	if sub.N() == 0 || sub.N() == ds.N() {
		t.Fatalf("degenerate subset %d", sub.N())
	}
	// Impossible query errors out.
	impossible := MustCompile("LanguageTest > 100", s)
	if _, err := impossible.Select(ds); err == nil {
		t.Error("empty selection accepted")
	}
}

func TestMatchSingle(t *testing.T) {
	ds := pop(t)
	q := MustCompile("ApprovalRate >= 25", ds.Schema())
	if !q.Match(ds, 0) {
		t.Fatal("trivially true query did not match")
	}
}

func TestCanonicalStringStable(t *testing.T) {
	s := schema()
	q := MustCompile("Gender = 'Male' AND (Country = 'India' OR YearsExperience > 3)", s)
	if !strings.Contains(q.String(), "AND") {
		t.Fatalf("String = %q", q.String())
	}
}
