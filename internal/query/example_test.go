package query_test

import (
	"fmt"

	"fairrank/internal/query"
	"fairrank/internal/simulate"
)

// A requester's query selects eligible candidates before ranking.
func ExampleCompiled_Filter() {
	ds, _ := simulate.PaperWorkers(1000, 42)
	q := query.MustCompile(
		"Gender = 'Female' AND YearsExperience >= 10 AND Country IN ('America', 'India')",
		ds.Schema())
	matched := q.Filter(ds)
	fmt.Println(len(matched) > 0 && len(matched) < 1000)
	// Output: true
}

func ExampleParse() {
	e, _ := query.Parse("a = 1 OR b = 2 AND NOT c = 3")
	fmt.Println(e)
	// Output: (a = 1 OR (b = 2 AND (NOT c = 3)))
}
