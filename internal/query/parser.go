package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a parsed query expression. Call Bind against a schema before
// evaluating it; Parse performs only syntactic checks.
type Expr interface {
	// String renders the expression canonically.
	String() string
}

// BinaryExpr is an AND/OR of two subexpressions.
type BinaryExpr struct {
	Op          string // "AND" or "OR"
	Left, Right Expr
}

// String implements Expr.
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}

// NotExpr negates a subexpression.
type NotExpr struct {
	Inner Expr
}

// String implements Expr.
func (e *NotExpr) String() string { return fmt.Sprintf("(NOT %s)", e.Inner) }

// CompareExpr compares an attribute against a literal.
type CompareExpr struct {
	Attr string
	Op   string // = != < <= > >=
	// Exactly one of Str / Num is meaningful, per IsString.
	IsString bool
	Str      string
	Num      float64
}

// String implements Expr.
func (e *CompareExpr) String() string {
	if e.IsString {
		return fmt.Sprintf("%s %s '%s'", e.Attr, e.Op, e.Str)
	}
	return fmt.Sprintf("%s %s %s", e.Attr, e.Op, strconv.FormatFloat(e.Num, 'g', -1, 64))
}

// InExpr tests membership of an attribute in a literal list.
type InExpr struct {
	Attr    string
	Strs    []string
	Nums    []float64
	Numeric bool
}

// String implements Expr.
func (e *InExpr) String() string {
	parts := make([]string, 0, len(e.Strs)+len(e.Nums))
	if e.Numeric {
		for _, n := range e.Nums {
			parts = append(parts, strconv.FormatFloat(n, 'g', -1, 64))
		}
	} else {
		for _, s := range e.Strs {
			parts = append(parts, "'"+s+"'")
		}
	}
	return fmt.Sprintf("%s IN (%s)", e.Attr, strings.Join(parts, ", "))
}

// Parse parses a query string into an expression tree.
func Parse(input string) (Expr, error) {
	if strings.TrimSpace(input) == "" {
		return nil, fmt.Errorf("query: empty query")
	}
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("query: unexpected %s at position %d", p.peek().kind, p.peek().pos)
	}
	return e, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return t, fmt.Errorf("query: expected %s but found %s at position %d", kind, t.kind, t.pos)
	}
	return p.next(), nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAnd {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.peek().kind {
	case tokNot:
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return p.parseComparison()
	}
}

func (p *parser) parseComparison() (Expr, error) {
	ident, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	switch p.peek().kind {
	case tokOp:
		op := p.next()
		switch p.peek().kind {
		case tokString:
			v := p.next()
			if op.text != "=" && op.text != "!=" {
				return nil, fmt.Errorf("query: operator %s not valid for strings at position %d", op.text, op.pos)
			}
			return &CompareExpr{Attr: ident.text, Op: op.text, IsString: true, Str: v.text}, nil
		case tokNumber:
			v := p.next()
			f, err := strconv.ParseFloat(v.text, 64)
			if err != nil {
				return nil, fmt.Errorf("query: bad number %q at position %d", v.text, v.pos)
			}
			return &CompareExpr{Attr: ident.text, Op: op.text, Num: f}, nil
		default:
			return nil, fmt.Errorf("query: expected a value after %s at position %d", op.text, p.peek().pos)
		}
	case tokIn:
		p.next()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		in := &InExpr{Attr: ident.text}
		first := true
		for {
			switch p.peek().kind {
			case tokString:
				if !first && in.Numeric {
					return nil, fmt.Errorf("query: mixed string and number in IN list at position %d", p.peek().pos)
				}
				in.Strs = append(in.Strs, p.next().text)
			case tokNumber:
				if !first && !in.Numeric {
					return nil, fmt.Errorf("query: mixed string and number in IN list at position %d", p.peek().pos)
				}
				in.Numeric = true
				v := p.next()
				f, err := strconv.ParseFloat(v.text, 64)
				if err != nil {
					return nil, fmt.Errorf("query: bad number %q at position %d", v.text, v.pos)
				}
				in.Nums = append(in.Nums, f)
			default:
				return nil, fmt.Errorf("query: expected a value in IN list at position %d", p.peek().pos)
			}
			first = false
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return in, nil
	default:
		return nil, fmt.Errorf("query: expected an operator or IN after %q at position %d", ident.text, p.peek().pos)
	}
}
