// Package campaign runs audit campaigns: many scoring functions audited
// against one population, with permutation-test p-values and
// Benjamini-Hochberg false-discovery-rate control across the whole
// campaign. Auditing twenty task functions at p < 0.05 each flags one
// "unfair" function by luck alone; a campaign reports which functions
// remain significant after correction.
package campaign

import (
	"context"
	"errors"
	"sort"
	"sync"

	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/scoring"
	"fairrank/internal/stats"
)

// Options configures a campaign.
type Options struct {
	// Config tunes the unfairness evaluator.
	Config core.Config
	// Algorithm selects the search algorithm by registered name
	// ("balanced" by default; see core.Algorithms for the full set).
	Algorithm string
	// Rounds is the permutation-test round count per function
	// (default 200).
	Rounds int
	// Alpha is the false-discovery rate for Benjamini-Hochberg
	// (default 0.05).
	Alpha float64
	// Parallelism bounds concurrent function audits (default 1).
	Parallelism int
	// Seed drives the permutation tests.
	Seed uint64
}

// FunctionAudit is one function's campaign outcome.
type FunctionAudit struct {
	// Function is the scoring function's name.
	Function string
	// Unfairness is the most unfair partitioning's average pairwise
	// distance.
	Unfairness float64
	// Partitions is the size of that partitioning.
	Partitions int
	// AttributesUsed names the protected attributes it splits on.
	AttributesUsed []string
	// PValue is the permutation-test p-value of the observed unfairness.
	PValue float64
	// Significant reports whether the function remains flagged after
	// Benjamini-Hochberg correction across the campaign.
	Significant bool
}

// Run audits every function against the population and returns one
// FunctionAudit per function, in input order, with campaign-wide FDR
// control applied to the Significant flags.
func Run(ds *dataset.Dataset, funcs []scoring.Func, opts Options) ([]FunctionAudit, error) {
	return RunContext(context.Background(), ds, funcs, opts)
}

// RunContext is Run under a context: cancelling ctx aborts every in-flight
// function audit and returns ctx.Err().
func RunContext(ctx context.Context, ds *dataset.Dataset, funcs []scoring.Func, opts Options) ([]FunctionAudit, error) {
	if ds == nil || ds.N() == 0 {
		return nil, errors.New("campaign: empty population")
	}
	if len(funcs) == 0 {
		return nil, errors.New("campaign: no scoring functions")
	}
	if opts.Rounds <= 0 {
		opts.Rounds = 200
	}
	if opts.Alpha <= 0 || opts.Alpha >= 1 {
		opts.Alpha = 0.05
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 1
	}
	if opts.Algorithm == "" {
		opts.Algorithm = "balanced"
	}
	// Fail fast on an unknown algorithm before fanning out any work.
	if _, err := core.Lookup(opts.Algorithm); err != nil {
		return nil, err
	}

	audits := make([]FunctionAudit, len(funcs))
	errs := make([]error, len(funcs))
	sem := make(chan struct{}, opts.Parallelism)
	var wg sync.WaitGroup
	for i, f := range funcs {
		wg.Add(1)
		go func(i int, f scoring.Func) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			audits[i], errs[i] = auditOne(ctx, ds, f, opts, opts.Seed+uint64(i)*7919)
		}(i, f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	pvals := make([]float64, len(audits))
	for i, a := range audits {
		pvals[i] = a.PValue
	}
	rejected, err := stats.BenjaminiHochberg(pvals, opts.Alpha)
	if err != nil {
		return nil, err
	}
	for i := range audits {
		audits[i].Significant = rejected[i]
	}
	return audits, nil
}

func auditOne(ctx context.Context, ds *dataset.Dataset, f scoring.Func, opts Options, seed uint64) (FunctionAudit, error) {
	e, err := core.NewEvaluator(ds, f, opts.Config)
	if err != nil {
		return FunctionAudit{}, err
	}
	res, err := core.Run(ctx, core.Spec{
		Algorithm: opts.Algorithm,
		Evaluator: e,
		Seed:      seed,
	})
	if err != nil {
		return FunctionAudit{}, err
	}
	p, _, err := core.Significance(e, res.Partitioning, opts.Rounds, seed)
	if err != nil {
		return FunctionAudit{}, err
	}
	var attrs []string
	for _, a := range res.Partitioning.AttributesUsed() {
		attrs = append(attrs, ds.Schema().Protected[a].Name)
	}
	sort.Strings(attrs)
	return FunctionAudit{
		Function:       f.Name(),
		Unfairness:     res.Unfairness,
		Partitions:     res.Partitioning.Size(),
		AttributesUsed: attrs,
		PValue:         p,
	}, nil
}
