package campaign

import (
	"testing"

	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
)

// mixedFunctions builds a campaign of one designed-bias function among
// several unbiased random ones.
func mixedFunctions(t *testing.T, seed uint64) []scoring.Func {
	t.Helper()
	random, err := simulate.RandomFunctions()
	if err != nil {
		t.Fatal(err)
	}
	f6, err := scoring.NewRuleFunc("f6", seed, []scoring.Rule{
		{When: scoring.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: scoring.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return append(random[:3:3], f6)
}

func TestCampaignFlagsBiasedFunction(t *testing.T) {
	ds, err := simulate.PaperWorkers(400, 3)
	if err != nil {
		t.Fatal(err)
	}
	funcs := mixedFunctions(t, 3)
	audits, err := Run(ds, funcs, Options{Rounds: 100, Parallelism: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(audits) != 4 {
		t.Fatalf("%d audits", len(audits))
	}
	byName := map[string]FunctionAudit{}
	for i, a := range audits {
		if a.Function != funcs[i].Name() {
			t.Fatalf("audit %d out of order: %s", i, a.Function)
		}
		byName[a.Function] = a
	}
	f6 := byName["f6"]
	if !f6.Significant {
		t.Fatalf("f6 not flagged: p=%v", f6.PValue)
	}
	if f6.Unfairness < 0.7 {
		t.Fatalf("f6 unfairness = %v", f6.Unfairness)
	}
	if len(f6.AttributesUsed) != 1 || f6.AttributesUsed[0] != "Gender" {
		t.Fatalf("f6 attributes = %v", f6.AttributesUsed)
	}
	// The random functions must not all be flagged (FDR control).
	flagged := 0
	for _, name := range []string{"f1", "f2", "f3"} {
		if byName[name].Significant {
			flagged++
		}
	}
	if flagged == 3 {
		t.Fatal("every random function flagged — correction not working")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	ds, err := simulate.PaperWorkers(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	funcs := mixedFunctions(t, 5)
	a, err := Run(ds, funcs, Options{Rounds: 50, Parallelism: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ds, funcs, Options{Rounds: 50, Parallelism: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].PValue != b[i].PValue || a[i].Unfairness != b[i].Unfairness {
			t.Fatalf("audit %d differs between parallel and serial", i)
		}
	}
}

func TestCampaignAlgorithms(t *testing.T) {
	ds, err := simulate.PaperWorkers(150, 7)
	if err != nil {
		t.Fatal(err)
	}
	funcs := mixedFunctions(t, 7)[:1]
	for _, algo := range []string{"balanced", "unbalanced", "all-attributes", "r-balanced", "r-unbalanced"} {
		if _, err := Run(ds, funcs, Options{Rounds: 20, Algorithm: algo, Seed: 7}); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
	if _, err := Run(ds, funcs, Options{Algorithm: "quantum"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCampaignValidation(t *testing.T) {
	ds, _ := simulate.PaperWorkers(50, 9)
	funcs := mixedFunctions(t, 9)
	if _, err := Run(nil, funcs, Options{}); err == nil {
		t.Error("nil population accepted")
	}
	if _, err := Run(ds, nil, Options{}); err == nil {
		t.Error("no functions accepted")
	}
}
