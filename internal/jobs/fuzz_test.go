package jobs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzJobSpecJSON pins the wire spec's decode/encode round trip. Specs
// are persisted in job records and replayed verbatim after crashes, so
// every spec DecodeSpec accepts must survive Marshal → DecodeSpec as the
// identical value, and the marshaled form must be a fixed point — any
// representation drift would change job records (and canonical hashes
// derived from resolved specs) across a restart.
func FuzzJobSpecJSON(f *testing.F) {
	f.Add([]byte(`{"dataset":"demo","weights":{"Score":1}}`))
	f.Add([]byte(`{"dataset":"d","weights":{"a":0.5,"b":2},"algorithm":"unbalanced","bins":20,"metric":"emd","attributes":["Gender"],"seed":7,"budget":1000,"priority":-3,"max_attempts":5}`))
	f.Add([]byte(`{"dataset":"d","weights":{"a":1},"attributes":[]}`))
	f.Add([]byte(`{"dataset":"d","weights":{"a":1},"unknown":true}`))
	f.Add([]byte(`{"dataset":"d","weights":{"a":-1}}`))
	f.Add([]byte(`{"dataset":"d","weights":{"a":1}}{"trailing":1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"dataset":"d","weights":{"a":1},"seed":18446744073709551615}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSpec(data)
		if err != nil {
			return // rejected input: only the accept path has invariants
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("DecodeSpec returned an invalid spec: %v\ninput: %q", err, data)
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v\nspec: %+v", err, s)
		}
		s2, err := DecodeSpec(out)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\nencoding: %s", err, out)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("spec round trip changed the value:\n  first  %+v\n  second %+v\ninput: %q", s, s2, data)
		}
		out2, err := json.Marshal(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("encoding is not a fixed point:\n  first  %s\n  second %s", out, out2)
		}
	})
}
