package jobs

// jobHeap is the dispatch order: a binary max-heap on (priority, -seq).
// Higher priority pops first; within a priority, lower sequence numbers
// (earlier submissions) pop first, so equal-priority dispatch is FIFO.
//
// Cancellation removes lazily: a job canceled while heaped keeps its slot
// and is skipped at pop time (its State is no longer queued), which keeps
// Cancel O(1) instead of O(n) heap surgery.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }

func (h jobHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].seq < h[j].seq
}

func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *jobHeap) Push(x any) { *h = append(*h, x.(*Job)) }

func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
