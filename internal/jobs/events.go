package jobs

import (
	"sync"

	"fairrank/internal/core"
)

// EventType discriminates the two event streams a job emits.
type EventType string

const (
	// EventState marks a lifecycle transition; Event.State carries the
	// new state.
	EventState EventType = "state"
	// EventProgress carries one engine TraceStep from the running audit.
	EventProgress EventType = "progress"
)

// Event is one entry in a job's event stream, as delivered to
// subscribers and serialized onto the SSE wire.
type Event struct {
	// Seq numbers events within one job, from 1; subscribers can resume
	// dedup across replay + live delivery by sequence.
	Seq int `json:"seq"`
	// Type selects which payload fields are set.
	Type EventType `json:"type"`
	// State is the lifecycle state entered (state events).
	State State `json:"state,omitempty"`
	// Attempt is the attempt number the event belongs to.
	Attempt int `json:"attempt,omitempty"`
	// Error carries the failure reason on failed/retrying transitions.
	Error string `json:"error,omitempty"`
	// Step is the engine trace step (progress events).
	Step *core.TraceStep `json:"step,omitempty"`
}

// maxBufferedEvents bounds one job's replay buffer. Progress events
// beyond the bound are still broadcast live but not retained; state
// events are always retained (there are at most a handful per job).
const maxBufferedEvents = 512

// subBuffer is each subscriber's channel capacity. A subscriber that
// falls further behind than this (a stalled SSE client) loses events
// rather than stalling the scheduler; droppedEvents counts the loss.
const subBuffer = 64

// eventHub fans per-job events out to subscribers and keeps a bounded
// replay buffer so late subscribers see the history. Terminal jobs are
// evicted entirely — their full record (including the result) lives in
// the queue/store, so the hub only ever holds state for live jobs.
type eventHub struct {
	mu   sync.Mutex
	jobs map[string]*jobStream
	// dropped counts events discarded because a subscriber's channel was
	// full; surfaced as a telemetry counter by the queue.
	dropped func()
}

type jobStream struct {
	events   []Event // replay buffer, bounded by maxBufferedEvents
	progress int     // how many of events are progress events
	nextSeq  int
	subs     map[int]chan Event
	nextSub  int
}

func newEventHub(dropped func()) *eventHub {
	if dropped == nil {
		dropped = func() {}
	}
	return &eventHub{jobs: map[string]*jobStream{}, dropped: dropped}
}

func (h *eventHub) stream(id string) *jobStream {
	s := h.jobs[id]
	if s == nil {
		s = &jobStream{subs: map[int]chan Event{}}
		h.jobs[id] = s
	}
	return s
}

// publish appends ev to the job's stream and broadcasts it. A terminal
// state event closes every subscriber channel and evicts the stream.
func (h *eventHub) publish(id string, ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.stream(id)
	s.nextSeq++
	ev.Seq = s.nextSeq
	if ev.Type != EventProgress || s.progress < maxBufferedEvents {
		s.events = append(s.events, ev)
		if ev.Type == EventProgress {
			s.progress++
		}
	}
	for _, ch := range s.subs {
		select {
		case ch <- ev:
		default:
			h.dropped()
		}
	}
	if ev.Type == EventState && ev.State.Terminal() {
		for _, ch := range s.subs {
			close(ch)
		}
		delete(h.jobs, id)
	}
}

// subscribe returns the replay buffer and a live channel. The channel is
// closed when the job reaches a terminal state; cancel detaches early
// (idempotent, safe after close). For a job already evicted (terminal
// before any subscription), ok is false and the caller synthesizes the
// replay from the job record.
func (h *eventHub) subscribe(id string) (replay []Event, ch <-chan Event, cancel func(), ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.jobs[id]
	if s == nil {
		return nil, nil, nil, false
	}
	replay = append([]Event(nil), s.events...)
	c := make(chan Event, subBuffer)
	sub := s.nextSub
	s.nextSub++
	s.subs[sub] = c
	cancel = func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if cur := h.jobs[id]; cur == s {
			delete(s.subs, sub)
		}
	}
	return replay, c, cancel, true
}
