package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairrank/internal/core"
	"fairrank/internal/telemetry"
)

// testSpec returns a distinct valid spec per key; the key doubles as the
// "canonical hash" in queue-level tests (the real hash is core.Spec.Hash,
// exercised in the property and server tests).
func testSpec(key string) Spec {
	return Spec{Dataset: "demo", Weights: map[string]float64{"Score": 1}, Algorithm: key}
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, q *Queue, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := q.Get(id); ok && j.State == want {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := q.Get(id)
	t.Fatalf("job %s: state %s after timeout, want %s (error %q)", id, j.State, want, j.Error)
	return Job{}
}

func newTestQueue(t *testing.T, exec Executor, opts Options) *Queue {
	t.Helper()
	q, err := New(nil, exec, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = q.Shutdown(ctx)
	})
	return q
}

func TestJobLifecycleDone(t *testing.T) {
	exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		progress(core.TraceStep{Attribute: 1, Partitions: 2, Accepted: true})
		return []byte(`{"ok":true}`), nil
	}
	q := newTestQueue(t, exec, Options{Workers: 1})
	j, created, err := q.Submit(testSpec("a"), "h-a")
	if err != nil || !created {
		t.Fatalf("Submit = (%v, %v), want created", created, err)
	}
	if j.State != StateQueued || j.ID == "" {
		t.Fatalf("submitted job = %+v", j)
	}
	got := waitState(t, q, j.ID, StateDone)
	if string(got.Result) != `{"ok":true}` {
		t.Fatalf("result = %s", got.Result)
	}
	if got.Attempt != 1 || got.StartedAt.IsZero() || got.FinishedAt.IsZero() {
		t.Fatalf("lifecycle fields wrong: %+v", got)
	}
	if q.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", q.Runs())
	}
}

func TestDedupSingleflightAndResultCache(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		runs.Add(1)
		<-release
		return []byte(`"r"`), nil
	}
	q := newTestQueue(t, exec, Options{Workers: 2, ResultTTL: time.Hour})
	first, created, err := q.Submit(testSpec("a"), "h")
	if err != nil || !created {
		t.Fatal("first submit should create")
	}
	// While active, identical submissions coalesce.
	for i := 0; i < 5; i++ {
		j, created, err := q.Submit(testSpec("a"), "h")
		if err != nil || created || j.ID != first.ID {
			t.Fatalf("dup submit %d = (%v, %v, %v), want same job", i, j.ID, created, err)
		}
	}
	close(release)
	waitState(t, q, first.ID, StateDone)
	// After completion, the TTL cache answers without a new run.
	j, created, err := q.Submit(testSpec("a"), "h")
	if err != nil || created || j.ID != first.ID || j.State != StateDone {
		t.Fatalf("cached submit = (%+v, %v, %v)", j, created, err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("executor ran %d times, want 1", got)
	}
	// A distinct hash is never absorbed.
	j2, created, err := q.Submit(testSpec("b"), "h2")
	if err != nil || !created || j2.ID == first.ID {
		t.Fatal("distinct spec must create a new job")
	}
	waitState(t, q, j2.ID, StateDone)
}

func TestResultCacheExpires(t *testing.T) {
	var runs atomic.Int64
	exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		runs.Add(1)
		return []byte(`1`), nil
	}
	q := newTestQueue(t, exec, Options{Workers: 1, ResultTTL: 10 * time.Millisecond})
	j, _, _ := q.Submit(testSpec("a"), "h")
	waitState(t, q, j.ID, StateDone)
	time.Sleep(20 * time.Millisecond)
	j2, created, err := q.Submit(testSpec("a"), "h")
	if err != nil || !created {
		t.Fatalf("post-TTL submit = (%v, %v), want new job", created, err)
	}
	waitState(t, q, j2.ID, StateDone)
	if runs.Load() != 2 {
		t.Fatalf("runs = %d, want 2 (cache must expire)", runs.Load())
	}
}

func TestPriorityDispatchOrder(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		<-release
		mu.Lock()
		order = append(order, j.SpecHash)
		mu.Unlock()
		return []byte(`1`), nil
	}
	// One worker, blocked on the first job while the rest queue up.
	q := newTestQueue(t, exec, Options{Workers: 1})
	gate, _, _ := q.Submit(testSpec("gate"), "gate")
	waitState(t, q, gate.ID, StateRunning) // worker is pinned; the rest stack up behind it
	submit := func(key string, prio int) Job {
		s := testSpec(key)
		s.Priority = prio
		j, created, err := q.Submit(s, key)
		if err != nil || !created {
			t.Fatalf("submit %s: (%v, %v)", key, created, err)
		}
		return j
	}
	submit("low-1", -1)
	submit("mid-1", 0)
	submit("high", 5)
	submit("mid-2", 0)
	last := submit("low-2", -1)
	close(release)
	waitState(t, q, last.ID, StateDone)
	waitState(t, q, gate.ID, StateDone)
	mu.Lock()
	defer mu.Unlock()
	want := []string{"gate", "high", "mid-1", "mid-2", "low-1", "low-2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
}

func TestRetryBackoffThenFail(t *testing.T) {
	var runs atomic.Int64
	exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		runs.Add(1)
		return nil, errors.New("boom")
	}
	q := newTestQueue(t, exec, Options{
		Workers: 1, MaxAttempts: 3,
		Backoff: Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Jitter: 0.1},
		Metrics: telemetry.NewRegistry(),
	})
	j, _, _ := q.Submit(testSpec("a"), "h")
	got := waitState(t, q, j.ID, StateFailed)
	if runs.Load() != 3 {
		t.Fatalf("runs = %d, want 3", runs.Load())
	}
	if got.Attempt != 3 || got.Error == "" {
		t.Fatalf("failed job = %+v", got)
	}
	// The hash must be free again after failure.
	j2, created, err := q.Submit(testSpec("a"), "h")
	if err != nil || !created {
		t.Fatalf("resubmit after failure = (%v, %v)", created, err)
	}
	waitState(t, q, j2.ID, StateFailed)
}

func TestRetrySucceedsSecondAttempt(t *testing.T) {
	var runs atomic.Int64
	exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		if runs.Add(1) == 1 {
			return nil, errors.New("transient")
		}
		return []byte(`"ok"`), nil
	}
	q := newTestQueue(t, exec, Options{
		Workers: 1, MaxAttempts: 3,
		Backoff: Backoff{Base: time.Millisecond, Max: time.Millisecond},
	})
	j, _, _ := q.Submit(testSpec("a"), "h")
	got := waitState(t, q, j.ID, StateDone)
	if got.Attempt != 2 || string(got.Result) != `"ok"` {
		t.Fatalf("job after retry = %+v", got)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan string, 8)
	exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		started <- j.ID
		<-ctx.Done()
		return nil, ctx.Err()
	}
	q := newTestQueue(t, exec, Options{Workers: 1})
	running, _, _ := q.Submit(testSpec("r"), "hr")
	<-started
	queued, _, _ := q.Submit(testSpec("q"), "hq")

	// Cancel while queued: immediate terminal state, no run.
	if _, err := q.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, q, queued.ID, StateCanceled)
	if got.Attempt != 0 {
		t.Fatalf("queued-canceled job ran: %+v", got)
	}
	// Cancel while running: context aborts the executor.
	if _, err := q.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, q, running.ID, StateCanceled)
	// Terminal cancel is a conflict; unknown IDs are not found.
	if _, err := q.Cancel(running.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("cancel terminal = %v, want ErrTerminal", err)
	}
	if _, err := q.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown = %v, want ErrNotFound", err)
	}
	if q.Runs() != 1 {
		t.Fatalf("runs = %d, want 1 (canceled queued job must not run)", q.Runs())
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	release := make(chan struct{})
	exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		<-release
		return []byte(`1`), nil
	}
	reg := telemetry.NewRegistry()
	q := newTestQueue(t, exec, Options{Workers: 1, MaxActive: 3, Metrics: reg})
	var last Job
	for i := 0; i < 3; i++ {
		j, created, err := q.Submit(testSpec(fmt.Sprint(i)), fmt.Sprint(i))
		if err != nil || !created {
			t.Fatalf("submit %d: (%v, %v)", i, created, err)
		}
		last = j
	}
	_, _, err := q.Submit(testSpec("overflow"), "overflow")
	var full *FullError
	if !errors.As(err, &full) {
		t.Fatalf("overflow submit error = %v, want FullError", err)
	}
	if full.Active != 3 || full.Limit != 3 || full.RetryAfter < time.Second {
		t.Fatalf("FullError = %+v", full)
	}
	// Dedup of an active hash is not admission: it must still coalesce.
	if _, created, err := q.Submit(testSpec("2"), "2"); err != nil || created {
		t.Fatalf("dedup during full queue = (%v, %v)", created, err)
	}
	close(release)
	waitState(t, q, last.ID, StateDone)
	// Capacity freed: admission opens again.
	j, created, err := q.Submit(testSpec("after"), "after")
	if err != nil || !created {
		t.Fatalf("post-drain submit = (%v, %v)", created, err)
	}
	waitState(t, q, j.ID, StateDone)
}

func TestListPagination(t *testing.T) {
	exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		return []byte(`1`), nil
	}
	q := newTestQueue(t, exec, Options{Workers: 1, MaxActive: 100})
	var last Job
	for i := 0; i < 10; i++ {
		last, _, _ = q.Submit(testSpec(fmt.Sprint(i)), fmt.Sprint(i))
	}
	waitState(t, q, last.ID, StateDone)
	for i := 0; i < 10; i++ {
		waitState(t, q, fmt.Sprintf("job-%06d", i+1), StateDone)
	}
	page, total := q.List("", 0, 3)
	if total != 10 || len(page) != 3 {
		t.Fatalf("List(0,3) = %d jobs of %d", len(page), total)
	}
	// Newest first, stable across pages.
	if page[0].ID != "job-000010" || page[2].ID != "job-000008" {
		t.Fatalf("first page = %s..%s", page[0].ID, page[2].ID)
	}
	page2, _ := q.List("", 3, 3)
	if page2[0].ID != "job-000007" {
		t.Fatalf("second page starts at %s", page2[0].ID)
	}
	tail, _ := q.List("", 9, 3)
	if len(tail) != 1 || tail[0].ID != "job-000001" {
		t.Fatalf("tail page = %+v", tail)
	}
	if page, total := q.List(StateDone, 0, 100); total != 10 || len(page) != 10 {
		t.Fatalf("state filter done = %d of %d", len(page), total)
	}
	if _, total := q.List(StateFailed, 0, 100); total != 0 {
		t.Fatalf("state filter failed found %d", total)
	}
	if page, total := q.List("", 50, 10); total != 10 || len(page) != 0 {
		t.Fatalf("past-the-end page = %d of %d", len(page), total)
	}
}

func TestEventsReplayAndLive(t *testing.T) {
	release := make(chan struct{})
	exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		progress(core.TraceStep{Attribute: 2, Partitions: 4})
		<-release
		return []byte(`1`), nil
	}
	q := newTestQueue(t, exec, Options{Workers: 1})
	j, _, _ := q.Submit(testSpec("a"), "h")
	waitState(t, q, j.ID, StateRunning)
	replay, live, cancel, err := q.Subscribe(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// Replay carries at least queued, running, and the progress step.
	var sawProgress bool
	for _, ev := range replay {
		if ev.Type == EventProgress && ev.Step != nil && ev.Step.Attribute == 2 {
			sawProgress = true
		}
	}
	if len(replay) < 3 || !sawProgress {
		t.Fatalf("replay = %+v", replay)
	}
	close(release)
	var final Event
	for ev := range live { // channel closes at the terminal transition
		final = ev
	}
	if final.Type != EventState || final.State != StateDone {
		t.Fatalf("final live event = %+v", final)
	}
	// Subscribing to a finished job synthesizes its terminal event.
	replay2, live2, cancel2, err := q.Subscribe(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	if len(replay2) != 1 || replay2[0].State != StateDone {
		t.Fatalf("terminal replay = %+v", replay2)	}
	if _, ok := <-live2; ok {
		t.Fatal("terminal live channel must be closed")
	}
	if _, _, _, err := q.Subscribe("job-424242"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Subscribe unknown = %v", err)
	}
}

// TestWorkerPoolNoGoroutineLeak cancels a pile of running jobs and shuts
// the queue down, then checks the goroutine count settles back — the
// worker pool, backoff timers and event hub must all unwind.
func TestWorkerPoolNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		q, err := New(nil, exec, Options{Workers: 4, MaxActive: 32,
			Backoff: Backoff{Base: time.Millisecond, Max: time.Millisecond}})
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for i := 0; i < 8; i++ {
			j, _, _ := q.Submit(testSpec(fmt.Sprint(i)), fmt.Sprint(i))
			ids = append(ids, j.ID)
		}
		// Hold subscriptions open while canceling, like SSE clients.
		for _, id := range ids {
			_, _, cancel, err := q.Subscribe(id)
			if err != nil {
				t.Fatal(err)
			}
			defer cancel()
		}
		for _, id := range ids {
			if _, err := q.Cancel(id); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range ids {
			waitState(t, q, id, StateCanceled)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := q.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	release := make(chan struct{})
	exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		<-release
		return []byte(`1`), nil
	}
	q, err := New(nil, exec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	j, _, _ := q.Submit(testSpec("a"), "h")
	waitState(t, q, j.ID, StateRunning)
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- q.Shutdown(ctx)
	}()
	// Admission is closed the moment shutdown begins.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, _, err := q.Submit(testSpec("late"), "late")
		if errors.Is(err, ErrShuttingDown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Submit never started refusing during shutdown")
		}
		time.Sleep(time.Millisecond)
	}
	close(release) // let the in-flight job finish draining
	if err := <-done; err != nil {
		t.Fatalf("drain shutdown = %v", err)
	}
	if got := waitState(t, q, j.ID, StateDone); string(got.Result) != `1` {
		t.Fatalf("drained job = %+v", got)
	}
}
