// Package jobs is the durable asynchronous audit tier between the HTTP
// edge and the engine: it turns audit specifications into managed
// background jobs with a persisted state machine, so a production
// deployment can queue, deduplicate, prioritize, retry and recover
// fairness audits instead of running each one synchronously inside an
// HTTP request.
//
// The pieces:
//
//   - Job is the unit of work: an audit Spec plus scheduling state
//     (priority, attempt count, timestamps) driven through the state
//     machine queued → running → {done, failed, canceled}. Every
//     transition is persisted as one record in the embedded store, so a
//     crashed or restarted process replays the log and requeues whatever
//     was queued or running when it died.
//
//   - Queue owns a bounded worker pool. Dispatch is by priority (higher
//     first, FIFO within a priority via a monotonic sequence number)
//     through a binary heap. Each running job gets its own cancelable
//     context; failures retry with capped exponential backoff plus
//     jitter; identical submissions — identified by the canonical
//     core.Spec hash — coalesce onto one job (singleflight), and a TTL
//     result cache answers resubmissions of recently completed specs
//     without re-running the engine. Admission control sheds load with a
//     typed FullError (the HTTP layer maps it to 429 + Retry-After) once
//     the active set reaches its bound.
//
//   - The event hub fans out per-job lifecycle and engine-progress
//     events to subscribers, which is what GET /v1/jobs/{id}/events
//     streams as server-sent events.
//
// The queue is engine-agnostic: it runs an Executor callback and stores
// the bytes it returns. The HTTP server supplies an executor that
// resolves the spec's dataset, drives core.Run, and serializes a
// deterministic result — deterministic so that a job interrupted by a
// crash and re-run after recovery reproduces its result bit-identically.
package jobs
