package jobs

import (
	"context"
	"encoding/json"
	"time"
)

// State is a job's position in the lifecycle state machine:
//
//	queued ──→ running ──→ done
//	  ↑  │        │  │───→ failed     (attempts exhausted)
//	  │  │        │  └───→ canceled   (DELETE while running)
//	  │  └──────────────→ canceled    (DELETE while queued)
//	  └───────── │                    (retry after backoff, or
//	                                   crash/shutdown recovery)
type State string

const (
	// StateQueued means the job is waiting for a worker — either in the
	// dispatch heap, or parked in a backoff window after a failed attempt.
	StateQueued State = "queued"
	// StateRunning means a worker is executing the job now.
	StateRunning State = "running"
	// StateDone means the job completed and Result holds its output.
	StateDone State = "done"
	// StateFailed means every allowed attempt errored; Error holds the
	// last attempt's error.
	StateFailed State = "failed"
	// StateCanceled means the job was canceled before completing.
	StateCanceled State = "canceled"
	// StateStolen means a work-stealing peer claimed and acked the job;
	// it runs there under the peer's own job ID. Error records the thief.
	StateStolen State = "stolen"
)

// Terminal reports whether the state is final: terminal jobs never change
// again and their event streams are closed.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateStolen
}

// Job is one managed audit. The exported fields are the persisted record
// and the API representation; Queue methods hand out value copies, never
// pointers into the scheduler's state.
type Job struct {
	// ID is the queue-assigned identifier ("job-000001", ...). IDs sort
	// lexicographically in creation order.
	ID string `json:"id"`
	// SpecHash is the canonical core.Spec hash the job was submitted
	// under — the dedup and result-cache key.
	SpecHash string `json:"spec_hash"`
	// Spec is the submitted audit specification, replayed verbatim on
	// retry and crash recovery.
	Spec Spec `json:"spec"`
	// Priority orders dispatch: higher runs first; equal priorities run
	// in submission order.
	Priority int `json:"priority"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Attempt counts started runs (1 on the first run). A job requeued by
	// crash recovery re-runs under the next attempt number.
	Attempt int `json:"attempt"`
	// MaxAttempts bounds Attempt; the job fails when a run errors at the
	// limit.
	MaxAttempts int `json:"max_attempts"`
	// Recovered marks a job that was requeued by crash recovery rather
	// than submitted in this process's lifetime.
	Recovered bool `json:"recovered,omitempty"`
	// EnqueuedAt, StartedAt and FinishedAt trace the lifecycle.
	// StartedAt is the most recent attempt's start; both StartedAt and
	// FinishedAt are zero until they happen.
	EnqueuedAt time.Time `json:"enqueued_at"`
	StartedAt  time.Time `json:"started_at,omitempty"`
	FinishedAt time.Time `json:"finished_at,omitempty"`
	// Error is the most recent attempt's error, kept across retries so a
	// queued-for-retry job explains why it is waiting.
	Error string `json:"error,omitempty"`
	// Result is the executor's output once State is done.
	Result json.RawMessage `json:"result,omitempty"`

	// Scheduler-private state, never persisted or copied out.
	seq          uint64             // FIFO tiebreak within a priority
	cancel       context.CancelFunc // set while running
	userCanceled bool               // Cancel was called mid-run
	retryTimer   *time.Timer        // set while parked in a backoff window
	notBefore    time.Time          // end of the backoff window
	claimToken   string             // set while parked under a steal claim
	claimedBy    string             // thief node that holds the claim
	claimTimer   *time.Timer        // claim-expiry requeue timer
}

// snapshot returns the API/persistence view of the job: a value copy with
// the scheduler-private fields zeroed.
func (j *Job) snapshot() Job {
	c := *j
	c.seq = 0
	c.cancel = nil
	c.userCanceled = false
	c.retryTimer = nil
	c.notBefore = time.Time{}
	c.claimToken = ""
	c.claimedBy = ""
	c.claimTimer = nil
	return c
}
