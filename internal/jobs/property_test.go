package jobs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fairrank/internal/core"
	"fairrank/internal/testkit"
)

// TestDedupNeverDropsDistinctSpec is the singleflight safety property:
// over random multisets of specs submitted concurrently, every distinct
// spec hash executes exactly once per cache epoch, every duplicate
// coalesces onto its hash's job, and no distinct spec is ever absorbed
// by another. Seeds replay failures deterministically (testkit.Gen).
func TestDedupNeverDropsDistinctSpec(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			g := testkit.NewGen(seed)
			distinct := g.R.IntRange(2, 12)

			// Build the multiset: each distinct spec appears 1–6 times, in
			// a shuffled submission order, racing across goroutines.
			type entry struct {
				spec Spec
				hash string
			}
			var multiset []entry
			for i := 0; i < distinct; i++ {
				sp := testSpec(fmt.Sprintf("algo-%d", i))
				sp.Seed = g.R.Uint64()
				sp.Priority = g.R.IntRange(-3, 3)
				e := entry{spec: sp, hash: fmt.Sprintf("hash-%d", i)}
				for c := g.R.IntRange(1, 6); c > 0; c-- {
					multiset = append(multiset, e)
				}
			}
			for i := range multiset { // Fisher–Yates
				k := g.R.Intn(i + 1)
				multiset[i], multiset[k] = multiset[k], multiset[i]
			}

			// The executor records which hash each run was for; results are
			// a pure function of the spec so cross-wiring would be visible.
			var mu sync.Mutex
			runsPerHash := map[string]int{}
			exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
				mu.Lock()
				runsPerHash[j.SpecHash]++
				mu.Unlock()
				return []byte(fmt.Sprintf(`{"seed":%d}`, j.Spec.Seed)), nil
			}
			q := newTestQueue(t, exec, Options{Workers: 4, MaxActive: len(multiset) + 1, ResultTTL: time.Hour})

			results := make([]Job, len(multiset))
			var wg sync.WaitGroup
			for i, e := range multiset {
				wg.Add(1)
				go func(i int, e entry) {
					defer wg.Done()
					j, _, err := q.Submit(e.spec, e.hash)
					if err != nil {
						t.Errorf("submit %s: %v", e.hash, err)
						return
					}
					results[i] = j
				}(i, e)
			}
			wg.Wait()

			// Every submission landed on a job carrying its own hash — a
			// distinct spec was never absorbed by a different one.
			jobsPerHash := map[string]string{}
			for i, j := range results {
				if j.SpecHash != multiset[i].hash {
					t.Fatalf("submission %d of %s landed on job %s with hash %s",
						i, multiset[i].hash, j.ID, j.SpecHash)
				}
				if prev, ok := jobsPerHash[j.SpecHash]; ok && prev != j.ID {
					t.Fatalf("hash %s split across jobs %s and %s", j.SpecHash, prev, j.ID)
				}
				jobsPerHash[j.SpecHash] = j.ID
			}
			if len(jobsPerHash) != distinct {
				t.Fatalf("got %d jobs for %d distinct specs", len(jobsPerHash), distinct)
			}
			for hash, id := range jobsPerHash {
				j := waitState(t, q, id, StateDone)
				want := fmt.Sprintf(`{"seed":%d}`, j.Spec.Seed)
				if string(j.Result) != want {
					t.Fatalf("hash %s result = %s, want %s", hash, j.Result, want)
				}
			}

			// Exactly one run per distinct spec: dedup absorbed duplicates
			// without dropping anyone.
			mu.Lock()
			defer mu.Unlock()
			if q.Runs() != int64(distinct) {
				t.Fatalf("runs = %d, want %d", q.Runs(), distinct)
			}
			for hash, n := range runsPerHash {
				if n != 1 {
					t.Fatalf("hash %s ran %d times", hash, n)
				}
			}
		})
	}
}
