package jobs

import (
	"time"

	"fairrank/internal/telemetry"
)

// Metric names exported on the queue's registry.
const (
	// MetricSubmitted counts accepted submissions that created a new job.
	MetricSubmitted = "fairrank_jobs_submitted_total"
	// MetricDeduped counts submissions coalesced onto an active job with
	// the same spec hash.
	MetricDeduped = "fairrank_jobs_deduped_total"
	// MetricCacheHits counts submissions answered from the TTL result
	// cache without a new run.
	MetricCacheHits = "fairrank_jobs_result_cache_hits_total"
	// MetricShed counts submissions rejected by admission control.
	MetricShed = "fairrank_jobs_shed_total"
	// MetricRuns counts executor invocations (attempts actually started).
	MetricRuns = "fairrank_jobs_runs_total"
	// MetricRetries counts failed attempts that were requeued.
	MetricRetries = "fairrank_jobs_retries_total"
	// MetricCompleted counts terminal transitions, labeled by final state.
	MetricCompleted = "fairrank_jobs_completed_total"
	// MetricRecovered counts jobs requeued by crash recovery at startup.
	MetricRecovered = "fairrank_jobs_recovered_total"
	// MetricPersistErrors counts job-record writes the store rejected
	// (the scheduler keeps going; durability degrades until the store
	// recovers).
	MetricPersistErrors = "fairrank_jobs_persist_errors_total"
	// MetricEventsDropped counts events discarded because a subscriber
	// fell behind.
	MetricEventsDropped = "fairrank_jobs_events_dropped_total"
	// MetricClaims counts queued jobs handed to stealing peers under
	// claim tokens (steal.go).
	MetricClaims = "fairrank_jobs_steal_claims_total"
	// MetricClaimsExpired counts steal claims that timed out unacked and
	// returned their jobs to the ready heap.
	MetricClaimsExpired = "fairrank_jobs_steal_claims_expired_total"
	// MetricDepth gauges the live population, labeled by state
	// (queued/running).
	MetricDepth = "fairrank_jobs_depth"
	// MetricOldestAge gauges the age in seconds of the oldest queued job
	// (0 when idle) — the primary "is the pool keeping up" signal.
	MetricOldestAge = "fairrank_jobs_oldest_queued_age_seconds"
	// MetricWaitSeconds is the queue-wait histogram (enqueue → first run).
	MetricWaitSeconds = "fairrank_jobs_wait_seconds"
	// MetricRunSeconds is the run-latency histogram per attempt.
	MetricRunSeconds = "fairrank_jobs_run_seconds"
)

// queueMetrics resolves every series once at construction; nil-safe
// no-ops when the queue has no registry, mirroring the engine's pattern.
type queueMetrics struct {
	submitted     *telemetry.Counter
	deduped       *telemetry.Counter
	cacheHits     *telemetry.Counter
	shed          *telemetry.Counter
	runs          *telemetry.Counter
	retries       *telemetry.Counter
	done          *telemetry.Counter
	failed        *telemetry.Counter
	canceled      *telemetry.Counter
	stolen        *telemetry.Counter
	claims        *telemetry.Counter
	claimsExpired *telemetry.Counter
	recovered     *telemetry.Counter
	persistErrors *telemetry.Counter
	eventsDropped *telemetry.Counter
	depthQueued   *telemetry.Gauge
	depthRunning  *telemetry.Gauge
	waitSeconds   *telemetry.Histogram
	runSeconds    *telemetry.Histogram
}

func newQueueMetrics(reg *telemetry.Registry, oldestAge func() float64) queueMetrics {
	if reg == nil {
		return queueMetrics{}
	}
	state := func(v string) telemetry.Label { return telemetry.Label{Key: "state", Value: v} }
	reg.GaugeFunc(MetricOldestAge, oldestAge)
	return queueMetrics{
		submitted:     reg.Counter(MetricSubmitted),
		deduped:       reg.Counter(MetricDeduped),
		cacheHits:     reg.Counter(MetricCacheHits),
		shed:          reg.Counter(MetricShed),
		runs:          reg.Counter(MetricRuns),
		retries:       reg.Counter(MetricRetries),
		done:          reg.Counter(MetricCompleted, state(string(StateDone))),
		failed:        reg.Counter(MetricCompleted, state(string(StateFailed))),
		canceled:      reg.Counter(MetricCompleted, state(string(StateCanceled))),
		stolen:        reg.Counter(MetricCompleted, state(string(StateStolen))),
		claims:        reg.Counter(MetricClaims),
		claimsExpired: reg.Counter(MetricClaimsExpired),
		recovered:     reg.Counter(MetricRecovered),
		persistErrors: reg.Counter(MetricPersistErrors),
		eventsDropped: reg.Counter(MetricEventsDropped),
		depthQueued:   reg.Gauge(MetricDepth, state(string(StateQueued))),
		depthRunning:  reg.Gauge(MetricDepth, state(string(StateRunning))),
		waitSeconds:   reg.Histogram(MetricWaitSeconds, telemetry.DefBuckets()),
		runSeconds:    reg.Histogram(MetricRunSeconds, telemetry.DefBuckets()),
	}
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func setGauge(g *telemetry.Gauge, v float64) {
	if g != nil {
		g.Set(v)
	}
}

func observeSince(h *telemetry.Histogram, start time.Time) {
	if h != nil {
		h.ObserveSince(start)
	}
}
