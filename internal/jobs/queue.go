package jobs

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fairrank/internal/core"
	"fairrank/internal/rng"
	"fairrank/internal/store"
	"fairrank/internal/telemetry"
)

// Executor runs one job attempt. It receives a snapshot of the job (not a
// live pointer), must honor ctx cancellation, and returns the result
// bytes to store on success. progress forwards engine TraceSteps to the
// job's event stream; it is safe to ignore.
//
// Executors must be deterministic in the job's Spec: crash recovery
// re-runs interrupted jobs and promises bit-identical results, so the
// output must not embed wall-clock time, attempt counts, or other
// run-local state.
type Executor func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error)

// Options configures a Queue.
type Options struct {
	// Workers is the worker-pool size. 0 selects DefaultWorkers; negative
	// starts no workers (jobs queue but never run — useful in tests and
	// for drain-only replicas).
	Workers int
	// MaxActive bounds admission: once this many jobs are queued or
	// running, Submit sheds with a FullError. 0 selects DefaultMaxActive.
	MaxActive int
	// MaxAttempts is the default retry budget for jobs that do not set
	// their own. 0 selects DefaultMaxAttempts.
	MaxAttempts int
	// Backoff is the retry delay policy; zero fields use DefaultBackoff.
	Backoff Backoff
	// ResultTTL is how long a completed spec's result answers
	// resubmissions of the same hash without a new run. 0 selects
	// DefaultResultTTL; negative disables the cache.
	ResultTTL time.Duration
	// Seed drives retry jitter. 0 selects a fixed seed: jitter quality
	// does not need entropy, and determinism helps tests.
	Seed uint64
	// Metrics, when non-nil, receives the queue's telemetry series (see
	// the Metric* names in this package).
	Metrics *telemetry.Registry
	// Logf receives scheduler log lines (e.g. log.Printf); nil disables.
	Logf func(format string, args ...any)
}

// Defaults for the zero Options.
const (
	DefaultWorkers     = 2
	DefaultMaxActive   = 64
	DefaultMaxAttempts = 3
	DefaultResultTTL   = 10 * time.Minute
)

// bucketJobs is the store bucket holding one JSON record per job.
const bucketJobs = "jobs"

// ErrNotFound is returned for operations on unknown job IDs.
var ErrNotFound = errors.New("jobs: no such job")

// ErrTerminal is returned when canceling a job that already finished.
var ErrTerminal = errors.New("jobs: job already in a terminal state")

// ErrShuttingDown is returned by Submit after Shutdown began.
var ErrShuttingDown = errors.New("jobs: queue is shutting down")

// FullError is returned by Submit when admission control sheds the job;
// RetryAfter is the queue's estimate of when capacity frees up (the HTTP
// layer surfaces it as a Retry-After header on the 429).
type FullError struct {
	Active     int
	Limit      int
	RetryAfter time.Duration
}

func (e *FullError) Error() string {
	return fmt.Sprintf("jobs: queue full (%d/%d active), retry in %s", e.Active, e.Limit, e.RetryAfter)
}

type resultEntry struct {
	id      string
	expires time.Time
}

// Queue is the durable audit scheduler. Create with New; it recovers
// persisted jobs and starts its worker pool immediately.
type Queue struct {
	exec Executor
	db   *store.DB // nil = memory-only (tests)
	opts Options
	met  queueMetrics
	hub  *eventHub
	logf func(string, ...any)

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond // signals: heap non-empty, or closed
	jobs     map[string]*Job
	active   map[string]*Job // spec hash → non-terminal job (dedup)
	results  map[string]resultEntry
	claims   map[string]*Job // steal-claim token → parked job (steal.go)
	ready    jobHeap
	queuedN  int // jobs in StateQueued (heaped or in backoff)
	runningN int
	seq      uint64
	idSeq    uint64
	closed   bool

	killed  atomic.Bool // crash simulation: suppress persistence on exit
	runsN   atomic.Int64
	avgRun  atomic.Int64 // EWMA attempt duration, nanoseconds
	workers sync.WaitGroup
	jitter  *rng.RNG // guarded by mu
}

// New opens a queue over db (which may be nil for a memory-only queue),
// recovers persisted jobs — terminal records reload for listing and the
// result cache, queued/running records requeue — and starts the worker
// pool.
func New(db *store.DB, exec Executor, opts Options) (*Queue, error) {
	if exec == nil {
		return nil, errors.New("jobs: New requires an executor")
	}
	if opts.Workers == 0 {
		opts.Workers = DefaultWorkers
	}
	if opts.MaxActive <= 0 {
		opts.MaxActive = DefaultMaxActive
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.MaxAttempts > MaxAttemptsLimit {
		opts.MaxAttempts = MaxAttemptsLimit
	}
	opts.Backoff = opts.Backoff.withDefaults()
	if opts.ResultTTL == 0 {
		opts.ResultTTL = DefaultResultTTL
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 0x6a6f6273 // "jobs"
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		exec:       exec,
		db:         db,
		opts:       opts,
		logf:       logf,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		active:     map[string]*Job{},
		results:    map[string]resultEntry{},
		claims:     map[string]*Job{},
		jitter:     rng.New(seed),
	}
	q.cond = sync.NewCond(&q.mu)
	q.hub = newEventHub(func() { inc(q.met.eventsDropped) })
	q.met = newQueueMetrics(opts.Metrics, q.oldestQueuedAge)
	if err := q.recover(); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < opts.Workers; i++ {
		q.workers.Add(1)
		go q.worker()
	}
	return q, nil
}

// recover replays the jobs bucket: terminal jobs reload as history (done
// ones re-arm the result cache inside their TTL); queued and running jobs
// — the crash signature — requeue for another attempt.
func (q *Queue) recover() error {
	if q.db == nil {
		return nil
	}
	now := time.Now()
	ids := q.db.Keys(bucketJobs)
	for _, id := range ids {
		raw, ok := q.db.Get(bucketJobs, id)
		if !ok {
			continue
		}
		var j Job
		if err := json.Unmarshal(raw, &j); err != nil {
			return fmt.Errorf("jobs: corrupt job record %q: %w", id, err)
		}
		if j.ID != id {
			return fmt.Errorf("jobs: job record %q claims id %q", id, j.ID)
		}
		q.idSeq = max(q.idSeq, parseJobSeq(id))
		job := &j
		job.seq = q.nextSeq()
		q.jobs[id] = job
		switch {
		case job.State == StateDone:
			if q.opts.ResultTTL > 0 && job.FinishedAt.Add(q.opts.ResultTTL).After(now) {
				q.results[job.SpecHash] = resultEntry{id: id, expires: job.FinishedAt.Add(q.opts.ResultTTL)}
			}
		case job.State.Terminal():
			// failed/canceled: history only.
		default:
			// queued or running at crash time: requeue. Attempt stays as
			// recorded — the interrupted run already counted when it
			// started, and the next run will increment again.
			job.State = StateQueued
			job.Recovered = true
			if prev, dup := q.active[job.SpecHash]; dup {
				// Two active records with one hash cannot happen through
				// Submit; tolerate a hand-edited store by keeping the
				// earlier job and failing the later duplicate.
				q.logf("jobs: recovery: %s duplicates active spec of %s; marking failed", id, prev.ID)
				job.State = StateFailed
				job.Error = "duplicate active spec record at recovery"
				job.FinishedAt = now
				q.persist(job.snapshot())
				continue
			}
			q.active[job.SpecHash] = job
			q.queuedN++
			heap.Push(&q.ready, job)
			q.persist(job.snapshot())
			inc(q.met.recovered)
		}
	}
	q.syncDepth()
	return nil
}

// parseJobSeq extracts the numeric suffix of "job-%06d" IDs (0 when the
// ID does not match, which only happens on hand-edited stores).
func parseJobSeq(id string) uint64 {
	var n uint64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

func (q *Queue) nextSeq() uint64 {
	q.seq++
	return q.seq
}

// Submit admits one audit spec under its canonical hash. The returned
// snapshot is the job to poll; created reports whether a new job was
// enqueued (false when the submission coalesced onto an active job or a
// cached result). Errors: ErrShuttingDown after Shutdown, *FullError when
// admission control sheds.
func (q *Queue) Submit(spec Spec, specHash string) (Job, bool, error) {
	if specHash == "" {
		return Job{}, false, errors.New("jobs: Submit requires a spec hash")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Job{}, false, ErrShuttingDown
	}
	// Singleflight: an active job with this hash absorbs the submission.
	if j := q.active[specHash]; j != nil {
		inc(q.met.deduped)
		return j.snapshot(), false, nil
	}
	// TTL result cache: a recently completed identical spec answers
	// directly.
	now := time.Now()
	if e, ok := q.results[specHash]; ok {
		if now.Before(e.expires) {
			if j := q.jobs[e.id]; j != nil && j.State == StateDone {
				inc(q.met.cacheHits)
				return j.snapshot(), false, nil
			}
		}
		delete(q.results, specHash)
	}
	active := q.queuedN + q.runningN
	if active >= q.opts.MaxActive {
		inc(q.met.shed)
		return Job{}, false, &FullError{Active: active, Limit: q.opts.MaxActive, RetryAfter: q.retryAfterLocked()}
	}
	q.idSeq++
	maxAttempts := spec.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = q.opts.MaxAttempts
	}
	j := &Job{
		ID:          fmt.Sprintf("job-%06d", q.idSeq),
		SpecHash:    specHash,
		Spec:        spec,
		Priority:    spec.Priority,
		State:       StateQueued,
		MaxAttempts: maxAttempts,
		EnqueuedAt:  now,
		seq:         q.nextSeq(),
	}
	q.jobs[j.ID] = j
	q.active[specHash] = j
	q.queuedN++
	heap.Push(&q.ready, j)
	q.syncDepth()
	inc(q.met.submitted)
	q.persist(j.snapshot())
	q.publishState(j)
	q.cond.Signal()
	return j.snapshot(), true, nil
}

// retryAfterLocked estimates when a shed client should retry: the queue's
// expected drain time for its current backlog, clamped to [1s, 120s].
func (q *Queue) retryAfterLocked() time.Duration {
	avg := time.Duration(q.avgRun.Load())
	if avg <= 0 {
		avg = time.Second
	}
	workers := q.opts.Workers
	if workers < 1 {
		workers = 1
	}
	est := avg * time.Duration(q.queuedN/workers+1)
	return min(max(est, time.Second), 2*time.Minute)
}

// Get returns a snapshot of the job.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.snapshot(), true
}

// List returns one page of job snapshots, newest first, plus the total
// count matching the filter. state "" matches every job; offset/limit
// page through the filtered ordering (limit <= 0 returns an empty page —
// callers choose the default).
func (q *Queue) List(state State, offset, limit int) ([]Job, int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	ids := make([]string, 0, len(q.jobs))
	for id, j := range q.jobs {
		if state == "" || j.State == state {
			ids = append(ids, id)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(ids)))
	total := len(ids)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	ids = ids[offset:]
	if limit < 0 {
		limit = 0
	}
	if limit < len(ids) {
		ids = ids[:limit]
	}
	out := make([]Job, len(ids))
	for i, id := range ids {
		out[i] = q.jobs[id].snapshot()
	}
	return out, total
}

// Cancel stops a job: queued jobs (heaped or in backoff) transition to
// canceled immediately; running jobs get their context canceled and
// transition when the executor returns. Canceling a terminal job returns
// ErrTerminal; callers that need the distinction get the final snapshot
// either way.
func (q *Queue) Cancel(id string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	switch j.State {
	case StateQueued:
		if j.retryTimer != nil {
			j.retryTimer.Stop()
			j.retryTimer = nil
		}
		q.finishLocked(j, StateCanceled, "canceled while queued", nil)
		return j.snapshot(), nil
	case StateRunning:
		j.userCanceled = true
		if j.cancel != nil {
			j.cancel()
		}
		return j.snapshot(), nil
	default:
		return j.snapshot(), ErrTerminal
	}
}

// Runs reports how many executor attempts have started — the "engine
// runs" count that dedup tests pin against submission counts.
func (q *Queue) Runs() int64 { return q.runsN.Load() }

// Depth reports the live population (queued includes backoff windows).
func (q *Queue) Depth() (queued, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queuedN, q.runningN
}

// Subscribe attaches to a job's event stream, returning the buffered
// replay and a live channel that closes at the terminal transition.
// Subscribing to a job that already finished returns a synthesized
// replay (its terminal state event) and a closed channel.
func (q *Queue) Subscribe(id string) ([]Event, <-chan Event, func(), error) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return nil, nil, nil, ErrNotFound
	}
	snap := j.snapshot()
	q.mu.Unlock()
	if replay, ch, cancel, live := q.hub.subscribe(id); live {
		return replay, ch, cancel, nil
	}
	closed := make(chan Event)
	close(closed)
	return []Event{{Seq: 1, Type: EventState, State: snap.State, Attempt: snap.Attempt, Error: snap.Error}},
		closed, func() {}, nil
}

// worker is one pool goroutine: pop the highest-priority ready job, run
// it, repeat until shutdown.
func (q *Queue) worker() {
	defer q.workers.Done()
	for {
		j := q.next()
		if j == nil {
			return
		}
		q.run(j)
	}
}

// next blocks until a job is ready or the queue closes (nil).
func (q *Queue) next() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for q.ready.Len() > 0 {
			j := heap.Pop(&q.ready).(*Job)
			// Canceled-while-heaped jobs are skipped here (lazy removal).
			if j.State == StateQueued && j.retryTimer == nil {
				return j
			}
		}
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
}

// run drives one attempt of j and applies the resulting transition.
func (q *Queue) run(j *Job) {
	q.mu.Lock()
	if j.State != StateQueued {
		q.mu.Unlock()
		return
	}
	now := time.Now()
	if j.Attempt == 0 {
		observeSince(q.met.waitSeconds, j.EnqueuedAt)
	}
	j.State = StateRunning
	j.Attempt++
	j.StartedAt = now
	ctx, cancel := context.WithCancel(q.baseCtx)
	j.cancel = cancel
	q.queuedN--
	q.runningN++
	q.syncDepth()
	snap := j.snapshot()
	q.mu.Unlock()

	q.runsN.Add(1)
	inc(q.met.runs)
	q.persist(snap)
	q.publishStateSnap(snap)

	rctx, span := telemetry.StartSpan(ctx, "job")
	span.SetStr("job", snap.ID)
	span.SetStr("algorithm", snap.Spec.Algorithm)
	span.SetInt("attempt", int64(snap.Attempt))
	result, err := q.exec(rctx, snap, func(step core.TraceStep) {
		s := step
		q.hub.publish(snap.ID, Event{Type: EventProgress, Attempt: snap.Attempt, Step: &s})
	})
	span.End()
	cancel()
	q.observeRun(now)

	q.mu.Lock()
	defer q.mu.Unlock()
	j.cancel = nil
	switch {
	case q.killed.Load():
		// Crash simulation: vanish without persisting, exactly as a
		// SIGKILL would — the store still says "running", which is what
		// recovery keys on.
		return
	case err == nil:
		q.finishLocked(j, StateDone, "", result)
	case j.userCanceled:
		q.finishLocked(j, StateCanceled, "canceled while running", nil)
	case q.baseCtx.Err() != nil:
		// Shutdown deadline canceled the run. Park the job as queued in
		// the store (not the heap — admission is closed) so the next
		// process recovers and finishes it.
		j.State = StateQueued
		j.Error = "interrupted by shutdown"
		q.runningN--
		q.queuedN++
		q.syncDepth()
		q.persist(j.snapshot())
		q.publishState(j)
	case j.Attempt >= j.MaxAttempts:
		q.finishLocked(j, StateFailed, fmt.Sprintf("attempt %d/%d: %v", j.Attempt, j.MaxAttempts, err), nil)
	default:
		q.retryLocked(j, err)
	}
}

// observeRun folds one attempt duration into the latency histogram and
// the EWMA behind Retry-After estimates.
func (q *Queue) observeRun(start time.Time) {
	observeSince(q.met.runSeconds, start)
	d := int64(time.Since(start))
	prev := q.avgRun.Load()
	if prev == 0 {
		q.avgRun.Store(d)
	} else {
		q.avgRun.Store(prev + (d-prev)/4) // EWMA, alpha = 1/4
	}
}

// finishLocked applies a terminal transition. Caller holds q.mu.
func (q *Queue) finishLocked(j *Job, state State, errMsg string, result []byte) {
	q.clearClaimLocked(j)
	switch j.State {
	case StateQueued:
		q.queuedN--
	case StateRunning:
		q.runningN--
	}
	j.State = state
	j.Error = errMsg
	j.FinishedAt = time.Now()
	if result != nil {
		j.Result = json.RawMessage(result)
	}
	delete(q.active, j.SpecHash)
	switch state {
	case StateDone:
		inc(q.met.done)
		if q.opts.ResultTTL > 0 {
			q.results[j.SpecHash] = resultEntry{id: j.ID, expires: j.FinishedAt.Add(q.opts.ResultTTL)}
		}
	case StateFailed:
		inc(q.met.failed)
	case StateCanceled:
		inc(q.met.canceled)
	case StateStolen:
		inc(q.met.stolen)
	}
	q.syncDepth()
	q.persist(j.snapshot())
	q.publishState(j)
}

// retryLocked parks j in a backoff window and re-heaps it when the timer
// fires. Caller holds q.mu.
func (q *Queue) retryLocked(j *Job, cause error) {
	delay := q.opts.Backoff.Delay(j.Attempt, q.jitter)
	j.State = StateQueued
	j.Error = cause.Error()
	j.notBefore = time.Now().Add(delay)
	q.runningN--
	q.queuedN++
	q.syncDepth()
	inc(q.met.retries)
	q.logf("jobs: %s attempt %d/%d failed (%v); retrying in %s", j.ID, j.Attempt, j.MaxAttempts, cause, delay)
	j.retryTimer = time.AfterFunc(delay, func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		if j.retryTimer == nil || j.State != StateQueued {
			return // canceled or shut down while parked
		}
		j.retryTimer = nil
		if q.closed {
			return // stays queued in the store; recovery resumes it
		}
		heap.Push(&q.ready, j)
		q.cond.Signal()
	})
	q.persist(j.snapshot())
	q.publishState(j)
}

// Shutdown drains the queue: admission stops immediately, workers finish
// their current jobs, and queued jobs stay durably queued for the next
// process. If ctx expires first, running jobs are canceled and parked
// back as queued in the store. Returns ctx.Err() when the deadline cut
// the drain short.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	for _, j := range q.jobs {
		if j.retryTimer != nil {
			j.retryTimer.Stop()
			j.retryTimer = nil
		}
		q.clearClaimLocked(j)
	}
	q.cond.Broadcast()
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		q.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Kill simulates a process crash for recovery tests: every running job's
// context is canceled and no transition is persisted, leaving the store
// exactly as a power cut would — queued and running records in place.
// The queue is unusable afterwards.
func (q *Queue) Kill() {
	q.killed.Store(true)
	q.mu.Lock()
	q.closed = true
	for _, j := range q.jobs {
		if j.retryTimer != nil {
			j.retryTimer.Stop()
			j.retryTimer = nil
		}
		q.clearClaimLocked(j)
	}
	q.cond.Broadcast()
	q.mu.Unlock()
	q.baseCancel()
	q.workers.Wait()
}

// persist writes one job record; failures degrade durability, not
// availability (counted, logged, and the scheduler keeps going).
func (q *Queue) persist(snap Job) {
	if q.db == nil || q.killed.Load() {
		return
	}
	raw, err := json.Marshal(snap)
	if err == nil {
		err = q.db.Put(bucketJobs, snap.ID, raw)
	}
	if err != nil {
		inc(q.met.persistErrors)
		q.logf("jobs: persist %s: %v", snap.ID, err)
	}
}

func (q *Queue) publishState(j *Job) { q.publishStateSnap(j.snapshot()) }

func (q *Queue) publishStateSnap(snap Job) {
	q.hub.publish(snap.ID, Event{Type: EventState, State: snap.State, Attempt: snap.Attempt, Error: snap.Error})
}

func (q *Queue) syncDepth() {
	setGauge(q.met.depthQueued, float64(q.queuedN))
	setGauge(q.met.depthRunning, float64(q.runningN))
}

// oldestQueuedAge backs the queue-age gauge: seconds since the oldest
// queued job was enqueued, 0 when nothing waits.
func (q *Queue) oldestQueuedAge() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	var oldest time.Time
	for _, j := range q.active {
		if j.State == StateQueued && (oldest.IsZero() || j.EnqueuedAt.Before(oldest)) {
			oldest = j.EnqueuedAt
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest).Seconds()
}
