package jobs

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"fairrank/internal/core"
	"fairrank/internal/store"
)

// deterministicExec is a stand-in for the audit engine that honors the
// executor contract: its output is a pure function of the spec, so a
// recovered re-run must reproduce it bit for bit.
func deterministicExec(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
	return []byte(fmt.Sprintf(`{"algo":%q,"seed":%d}`, j.Spec.Algorithm, j.Spec.Seed)), nil
}

func openStore(t *testing.T, path string) *store.DB {
	t.Helper()
	db, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestRecoverMidRunCrash is the tentpole durability scenario: a job is
// mid-execution when the process dies (Kill suppresses all persistence,
// so the store still says "running" — exactly the power-cut signature).
// A fresh queue over the reopened store must requeue it and complete it
// with a result bit-identical to an uninterrupted run.
func TestRecoverMidRunCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.db")
	db := openStore(t, path)

	started := make(chan struct{})
	blockingExec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		close(started)
		<-ctx.Done() // hold the job mid-run until the crash
		return nil, ctx.Err()
	}
	q1, err := New(db, blockingExec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec("crash")
	spec.Seed = 99
	j, created, err := q1.Submit(spec, "h-crash")
	if err != nil || !created {
		t.Fatalf("Submit = (%v, %v)", created, err)
	}
	<-started
	if got := waitState(t, q1, j.ID, StateRunning); got.Attempt != 1 {
		t.Fatalf("pre-crash job = %+v", got)
	}
	q1.Kill()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The store must still carry the running-state record: Kill persisted
	// nothing after the crash point.
	db2 := openStore(t, path)
	raw, ok := db2.Get(bucketJobs, j.ID)
	if !ok || !bytes.Contains(raw, []byte(`"state":"running"`)) {
		t.Fatalf("store record after crash = %s", raw)
	}

	q2, err := New(db2, deterministicExec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, q2, j.ID, StateDone)
	if !got.Recovered {
		t.Fatal("recovered job must be flagged Recovered")
	}
	if got.Attempt != 2 {
		t.Fatalf("attempt after recovery = %d, want 2 (interrupted run counted)", got.Attempt)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	// Bit-identical contract: a clean, never-crashed run of the same spec
	// produces the same bytes.
	clean, err := New(nil, deterministicExec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cj, _, _ := clean.Submit(spec, "h-crash")
	cgot := waitState(t, clean, cj.ID, StateDone)
	if !bytes.Equal(got.Result, cgot.Result) {
		t.Fatalf("recovered result diverged:\n  recovered %s\n  clean     %s", got.Result, cgot.Result)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = clean.Shutdown(ctx2)
}

// TestRecoverQueuedAtCrash covers the other crash signature: jobs that
// never reached a worker (store says "queued") must requeue too.
func TestRecoverQueuedAtCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.db")
	db := openStore(t, path)
	// Workers: -1 starts no workers, so submissions stay durably queued.
	q1, err := New(db, deterministicExec, Options{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	a, _, _ := q1.Submit(testSpec("a"), "ha")
	b, _, _ := q1.Submit(testSpec("b"), "hb")
	q1.Kill()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openStore(t, path)
	defer db2.Close()
	q2, err := New(db2, deterministicExec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = q2.Shutdown(ctx)
	}()
	for _, id := range []string{a.ID, b.ID} {
		got := waitState(t, q2, id, StateDone)
		if !got.Recovered || got.Attempt != 1 {
			t.Fatalf("recovered queued job = %+v", got)
		}
	}
	// ID allocation must continue past recovered records, not collide.
	c, created, err := q2.Submit(testSpec("c"), "hc")
	if err != nil || !created {
		t.Fatalf("post-recovery submit = (%v, %v)", created, err)
	}
	if c.ID != "job-000003" {
		t.Fatalf("post-recovery ID = %s, want job-000003", c.ID)
	}
	waitState(t, q2, c.ID, StateDone)
}

// TestRecoverTerminalHistory pins that finished jobs reload as history:
// results stay queryable across restarts, and a done job inside its TTL
// re-arms the result cache so resubmission is still a cache hit.
func TestRecoverTerminalHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.db")
	db := openStore(t, path)
	q1, err := New(db, deterministicExec, Options{Workers: 1, ResultTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	done, _, _ := q1.Submit(testSpec("d"), "hd")
	doneSnap := waitState(t, q1, done.ID, StateDone)
	canceled, _, _ := q1.Submit(Spec{Dataset: "demo", Weights: map[string]float64{"Score": 1}, Algorithm: "x", Priority: -1}, "hx")
	// Cancel may race the worker; accept either queued- or running-cancel.
	if _, err := q1.Cancel(canceled.ID); err != nil && err != ErrTerminal {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = q1.Shutdown(ctx)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openStore(t, path)
	defer db2.Close()
	q2, err := New(db2, deterministicExec, Options{Workers: 1, ResultTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = q2.Shutdown(ctx)
	}()
	got, ok := q2.Get(done.ID)
	if !ok || got.State != StateDone || !bytes.Equal(got.Result, doneSnap.Result) {
		t.Fatalf("reloaded done job = %+v", got)
	}
	// The reloaded result must answer a resubmission without a new run.
	hit, created, err := q2.Submit(testSpec("d"), "hd")
	if err != nil || created || hit.ID != done.ID {
		t.Fatalf("post-restart dedup = (%v, %v, %v)", hit.ID, created, err)
	}
	if q2.Runs() != 0 {
		t.Fatalf("reload triggered %d runs, want 0", q2.Runs())
	}
}
