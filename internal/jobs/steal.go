package jobs

import (
	"container/heap"
	"crypto/rand"
	"encoding/hex"
	"time"
)

// Work-stealing handoff: a peer node ("thief") claims queued jobs from
// this queue ("victim") and acknowledges once it has durably enqueued
// them on its side. The handoff is two-phase so a job is never lost and
// runs exactly once when the exchange completes:
//
//	claim  ClaimQueued pops dispatchable jobs off the ready heap and
//	       parks them under a claim token. A claimed job stays queued in
//	       the persisted record — if either side crashes mid-handoff the
//	       victim's recovery requeues it (at-least-once, never zero).
//	ack    AckClaims transitions the claimed job to the terminal
//	       StateStolen: the thief owns it now, under its own job ID.
//
// A claim that is never acked expires after its TTL and the job returns
// to the ready heap. The only double-run window is an ack lost after the
// thief enqueued — harmless, because executors are deterministic in the
// spec and results are bit-identical wherever the job runs.

// DefaultClaimTTL is how long a steal claim may wait for its ack before
// the job returns to the victim's ready heap.
const DefaultClaimTTL = 15 * time.Second

// MaxStealBatch bounds how many jobs one ClaimQueued call hands over.
const MaxStealBatch = 64

// Claim is one queued job handed to a stealing peer, pending ack.
type Claim struct {
	// Token identifies the claim in the ack; unguessable so a stray ack
	// cannot finalize someone else's handoff.
	Token string `json:"token"`
	// JobID is the victim-side job identifier (for logs and status).
	JobID string `json:"job_id"`
	// SpecHash is the canonical spec hash the job was admitted under; the
	// thief re-submits under the same hash so cluster-wide dedup holds.
	SpecHash string `json:"spec_hash"`
	// Spec is the full wire spec, replayable on the thief as pure data.
	Spec Spec `json:"spec"`
}

func newClaimToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time-derived token: uniqueness is what matters
		// here, and a clock tick per claim under one mutex is unique.
		return hex.EncodeToString([]byte(time.Now().Format(time.RFC3339Nano)))
	}
	return hex.EncodeToString(b[:])
}

// ClaimQueued atomically removes up to max dispatchable queued jobs from
// the ready heap and parks them under claim tokens for a stealing peer.
// Only jobs whose spec passes eligible (nil = all) are handed over —
// thieves pass their dataset inventory so they never claim a job they
// cannot resolve. Jobs in backoff windows, canceled-but-heaped entries
// and already-claimed jobs are never claimed. Claims expire after ttl
// (0 selects DefaultClaimTTL) and the jobs return to the heap.
func (q *Queue) ClaimQueued(max int, eligible func(Spec) bool, thief string, ttl time.Duration) []Claim {
	if max <= 0 {
		return nil
	}
	if max > MaxStealBatch {
		max = MaxStealBatch
	}
	if ttl <= 0 {
		ttl = DefaultClaimTTL
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	var claimed []*Job
	var skipped []*Job
	for q.ready.Len() > 0 && len(claimed) < max {
		j := heap.Pop(&q.ready).(*Job)
		if j.State != StateQueued || j.retryTimer != nil {
			// Lazily removed (canceled while heaped) — drop, as next() does.
			continue
		}
		if eligible != nil && !eligible(j.Spec) {
			skipped = append(skipped, j)
			continue
		}
		claimed = append(claimed, j)
	}
	for _, j := range skipped {
		heap.Push(&q.ready, j)
	}
	if len(skipped) > 0 {
		q.cond.Signal()
	}
	out := make([]Claim, 0, len(claimed))
	for _, j := range claimed {
		token := newClaimToken()
		j.claimToken = token
		j.claimedBy = thief
		j.claimTimer = time.AfterFunc(ttl, func() { q.expireClaim(token) })
		q.claims[token] = j
		inc(q.met.claims)
		out = append(out, Claim{Token: token, JobID: j.ID, SpecHash: j.SpecHash, Spec: j.Spec})
	}
	return out
}

// expireClaim returns an unacked claim's job to the ready heap. The job
// never left StateQueued, so no persistence or event is needed.
func (q *Queue) expireClaim(token string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.claims[token]
	if !ok || j.claimToken != token {
		return // acked, canceled, or shut down while parked
	}
	q.clearClaimLocked(j)
	inc(q.met.claimsExpired)
	if j.State == StateQueued && !q.closed {
		heap.Push(&q.ready, j)
		q.cond.Signal()
	}
}

// clearClaimLocked detaches a job from its claim. Caller holds q.mu.
func (q *Queue) clearClaimLocked(j *Job) {
	if j.claimToken == "" {
		return
	}
	delete(q.claims, j.claimToken)
	if j.claimTimer != nil {
		j.claimTimer.Stop()
		j.claimTimer = nil
	}
	j.claimToken = ""
}

// AckClaims finalizes steal handoffs: each still-claimed token's job
// transitions to the terminal StateStolen, recording the thief that now
// owns it. Unknown or expired tokens are ignored (the job either went
// back to the heap or finished another way); the count of jobs actually
// handed over is returned.
func (q *Queue) AckClaims(tokens []string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, token := range tokens {
		j, ok := q.claims[token]
		if !ok || j.claimToken != token {
			continue
		}
		thief := j.claimedBy
		q.clearClaimLocked(j)
		if j.State != StateQueued {
			continue
		}
		q.finishLocked(j, StateStolen, "stolen by "+thief, nil)
		n++
	}
	return n
}

// Claimed reports how many jobs are currently parked under steal claims
// (still queued, not dispatchable, waiting for their ack).
func (q *Queue) Claimed() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.claims)
}
