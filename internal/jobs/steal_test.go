package jobs

import (
	"path/filepath"
	"testing"
	"time"
)

// drainQueue returns a queue whose workers never start, so submitted
// jobs sit in the ready heap — the victim side of a steal.
func drainQueue(t *testing.T) *Queue {
	t.Helper()
	return newTestQueue(t, deterministicExec, Options{Workers: -1})
}

func TestStealClaimAck(t *testing.T) {
	q := drainQueue(t)
	var ids []string
	for _, key := range []string{"a", "b", "c"} {
		j, created, err := q.Submit(testSpec(key), "h-"+key)
		if err != nil || !created {
			t.Fatalf("Submit(%s) = (%v, %v)", key, created, err)
		}
		ids = append(ids, j.ID)
	}

	claims := q.ClaimQueued(10, nil, "node-b", time.Minute)
	if len(claims) != 3 {
		t.Fatalf("ClaimQueued = %d claims, want 3", len(claims))
	}
	if got := q.Claimed(); got != 3 {
		t.Fatalf("Claimed = %d, want 3", got)
	}
	seen := map[string]bool{}
	var tokens []string
	for _, c := range claims {
		if c.Token == "" || seen[c.Token] {
			t.Fatalf("claim token %q empty or duplicated", c.Token)
		}
		seen[c.Token] = true
		if c.SpecHash == "" || c.Spec.Dataset == "" {
			t.Fatalf("claim carries incomplete job: %+v", c)
		}
		tokens = append(tokens, c.Token)
	}
	// Claimed jobs are parked: still queued in the API view, but no
	// longer claimable by another thief.
	if extra := q.ClaimQueued(10, nil, "node-c", time.Minute); len(extra) != 0 {
		t.Fatalf("second thief claimed %d parked jobs", len(extra))
	}

	if n := q.AckClaims(tokens); n != 3 {
		t.Fatalf("AckClaims = %d, want 3", n)
	}
	for _, id := range ids {
		j, ok := q.Get(id)
		if !ok || j.State != StateStolen {
			t.Fatalf("job %s state = %q, want stolen", id, j.State)
		}
		if !j.State.Terminal() {
			t.Fatalf("stolen is not terminal")
		}
		if j.Error != "stolen by node-b" {
			t.Fatalf("stolen job error = %q", j.Error)
		}
	}
	if queued, _ := q.Depth(); queued != 0 {
		t.Fatalf("queued depth = %d after ack, want 0", queued)
	}
	if got := q.Claimed(); got != 0 {
		t.Fatalf("Claimed = %d after ack, want 0", got)
	}
	// Acking again is a no-op, not an error.
	if n := q.AckClaims(tokens); n != 0 {
		t.Fatalf("re-AckClaims = %d, want 0", n)
	}
}

func TestStealClaimExpiryRequeues(t *testing.T) {
	q := drainQueue(t)
	j, _, err := q.Submit(testSpec("exp"), "h-exp")
	if err != nil {
		t.Fatal(err)
	}
	claims := q.ClaimQueued(1, nil, "node-b", 10*time.Millisecond)
	if len(claims) != 1 {
		t.Fatalf("ClaimQueued = %d, want 1", len(claims))
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.Claimed() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("claim never expired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	got, _ := q.Get(j.ID)
	if got.State != StateQueued {
		t.Fatalf("expired claim left job in %q, want queued", got.State)
	}
	// The job is back on the heap and claimable again.
	again := q.ClaimQueued(1, nil, "node-c", time.Minute)
	if len(again) != 1 || again[0].JobID != j.ID {
		t.Fatalf("re-claim after expiry = %+v", again)
	}
	// The stale token from the expired claim must not finalize anything.
	if n := q.AckClaims([]string{claims[0].Token}); n != 0 {
		t.Fatalf("stale ack finalized %d jobs", n)
	}
}

func TestStealEligibilityFilter(t *testing.T) {
	q := drainQueue(t)
	have := testSpec("have")
	miss := testSpec("miss")
	miss.Dataset = "elsewhere"
	if _, _, err := q.Submit(have, "h-have"); err != nil {
		t.Fatal(err)
	}
	jm, _, err := q.Submit(miss, "h-miss")
	if err != nil {
		t.Fatal(err)
	}
	claims := q.ClaimQueued(10, func(sp Spec) bool { return sp.Dataset == "demo" }, "node-b", time.Minute)
	if len(claims) != 1 || claims[0].Spec.Dataset != "demo" {
		t.Fatalf("filtered claims = %+v", claims)
	}
	// The ineligible job went back on the heap, still claimable by a
	// thief that does hold its dataset.
	rest := q.ClaimQueued(10, nil, "node-c", time.Minute)
	if len(rest) != 1 || rest[0].JobID != jm.ID {
		t.Fatalf("remaining claims = %+v", rest)
	}
}

func TestStealCancelWhileClaimed(t *testing.T) {
	q := drainQueue(t)
	j, _, err := q.Submit(testSpec("cancel"), "h-cancel")
	if err != nil {
		t.Fatal(err)
	}
	claims := q.ClaimQueued(1, nil, "node-b", time.Minute)
	if len(claims) != 1 {
		t.Fatalf("ClaimQueued = %d, want 1", len(claims))
	}
	if _, err := q.Cancel(j.ID); err != nil {
		t.Fatalf("Cancel while claimed: %v", err)
	}
	got, _ := q.Get(j.ID)
	if got.State != StateCanceled {
		t.Fatalf("state = %q, want canceled", got.State)
	}
	// The user won the race: the late ack must not overwrite canceled.
	if n := q.AckClaims([]string{claims[0].Token}); n != 0 {
		t.Fatalf("ack after cancel finalized %d jobs", n)
	}
	if got, _ := q.Get(j.ID); got.State != StateCanceled {
		t.Fatalf("ack after cancel rewrote state to %q", got.State)
	}
}

func TestStealBatchBound(t *testing.T) {
	q := newTestQueue(t, deterministicExec, Options{Workers: -1, MaxActive: 2 * MaxStealBatch})
	if claims := q.ClaimQueued(0, nil, "node-b", time.Minute); claims != nil {
		t.Fatalf("ClaimQueued(0) = %+v, want nil", claims)
	}
	for i := 0; i < MaxStealBatch+5; i++ {
		key := "bulk-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if _, _, err := q.Submit(testSpec(key), "h-"+key); err != nil {
			t.Fatal(err)
		}
	}
	claims := q.ClaimQueued(MaxStealBatch+100, nil, "node-b", time.Minute)
	if len(claims) != MaxStealBatch {
		t.Fatalf("claims = %d, want cap %d", len(claims), MaxStealBatch)
	}
}

// TestStealClaimCrashRecovery extends the PR 5 crash contract to steals:
// a job parked under a claim is still "queued" in the persisted record,
// so a victim crash before the ack requeues it — the job is never lost.
func TestStealClaimCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.db")
	db := openStore(t, path)
	q1, err := New(db, deterministicExec, Options{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := q1.Submit(testSpec("steal-crash"), "h-steal-crash")
	if err != nil {
		t.Fatal(err)
	}
	if claims := q1.ClaimQueued(1, nil, "node-b", time.Hour); len(claims) != 1 {
		t.Fatalf("ClaimQueued = %d, want 1", len(claims))
	}
	q1.Kill() // crash mid-handoff, ack never arrives
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openStore(t, path)
	defer db2.Close()
	q2, err := New(db2, deterministicExec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Kill()
	got := waitState(t, q2, j.ID, StateDone)
	if !got.Recovered {
		t.Fatalf("recovered job not flagged: %+v", got)
	}
}
