package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"fairrank/internal/emd"
)

// Spec is the wire-format audit specification a client submits to
// POST /v1/jobs. It mirrors the synchronous audit request, plus the
// scheduling fields (priority, max attempts) that only make sense for
// background jobs. The HTTP layer resolves it against its dataset table
// into a core.Spec at execution time, so a job survives restarts as pure
// data.
type Spec struct {
	// Dataset names the uploaded dataset under audit. Exactly one of
	// Dataset and Snapshot must be set.
	Dataset string `json:"dataset,omitempty"`
	// Snapshot names a stored columnar snapshot to audit instead of a
	// registered dataset. The executor opens a private memory-mapped view
	// per run and closes it when the job finishes, so arbitrarily large
	// populations can be audited without a resident dataset entry.
	Snapshot string `json:"snapshot,omitempty"`
	// Algorithm is a registered audit algorithm; empty means "balanced".
	Algorithm string `json:"algorithm,omitempty"`
	// Weights defines the linear scoring function over observed
	// attributes.
	Weights map[string]float64 `json:"weights"`
	// Bins is the histogram bin count (0 = engine default).
	Bins int `json:"bins,omitempty"`
	// Metric selects the histogram distance (empty = EMD).
	Metric string `json:"metric,omitempty"`
	// Attributes restricts the audit to these protected attributes.
	Attributes []string `json:"attributes,omitempty"`
	// Seed drives the randomized baselines.
	Seed uint64 `json:"seed,omitempty"`
	// Budget caps exhaustive enumeration (0 = engine default).
	Budget int `json:"budget,omitempty"`
	// Priority orders dispatch in [MinPriority, MaxPriority]; higher runs
	// first. 0 is the default service class.
	Priority int `json:"priority,omitempty"`
	// MaxAttempts bounds retries (0 = queue default).
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// Priority and attempt bounds enforced by Spec.Validate.
const (
	MinPriority = -100
	MaxPriority = 100
	// MaxBins bounds the requested histogram resolution; the engine
	// allocates O(bins) per partition representation.
	MaxBins = 10000
	// MaxAttemptsLimit bounds per-job retry budgets.
	MaxAttemptsLimit = 10
)

// DecodeSpec parses and validates a submitted job spec. It is strict —
// unknown fields and trailing garbage are rejected — because specs are
// persisted and replayed: a typo silently ignored at submission would
// come back as a surprising audit after a crash.
func DecodeSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("jobs: bad spec json: %w", err)
	}
	if dec.More() {
		return Spec{}, errors.New("jobs: trailing data after spec json")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s.normalize(), nil
}

// Validate checks the spec's self-contained invariants. Dataset existence
// and attribute names are checked against live server state at submit and
// execution time, not here.
func (s Spec) Validate() error {
	if (s.Dataset == "") == (s.Snapshot == "") {
		return errors.New("jobs: spec needs exactly one of dataset or snapshot")
	}
	if len(s.Weights) == 0 {
		return errors.New("jobs: spec needs scoring weights")
	}
	for attr, w := range s.Weights {
		if attr == "" {
			return errors.New("jobs: empty weight attribute name")
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("jobs: invalid weight %v for %q", w, attr)
		}
	}
	if s.Metric != "" {
		if _, err := emd.ParseMetric(s.Metric); err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
	}
	for _, a := range s.Attributes {
		if a == "" {
			return errors.New("jobs: empty attribute name")
		}
	}
	if s.Bins < 0 || s.Bins > MaxBins {
		return fmt.Errorf("jobs: bins %d out of range [0, %d]", s.Bins, MaxBins)
	}
	if s.Budget < 0 {
		return fmt.Errorf("jobs: negative budget %d", s.Budget)
	}
	if s.Priority < MinPriority || s.Priority > MaxPriority {
		return fmt.Errorf("jobs: priority %d out of range [%d, %d]", s.Priority, MinPriority, MaxPriority)
	}
	if s.MaxAttempts < 0 || s.MaxAttempts > MaxAttemptsLimit {
		return fmt.Errorf("jobs: max_attempts %d out of range [0, %d]", s.MaxAttempts, MaxAttemptsLimit)
	}
	return nil
}

// normalize collapses representations that decode differently but mean
// the same thing, so a decoded spec round-trips through Marshal/Decode
// unchanged (pinned by FuzzJobSpecJSON).
func (s Spec) normalize() Spec {
	if len(s.Attributes) == 0 {
		s.Attributes = nil
	}
	return s
}
