package jobs

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fairrank/internal/core"
	"fairrank/internal/store"
)

// benchThroughput pushes b.N distinct jobs through a queue and waits for
// every completion, measuring end-to-end scheduler throughput (submit,
// heap dispatch, persistence, event fanout) with a no-op executor so the
// engine itself stays out of the numbers.
func benchThroughput(b *testing.B, db *store.DB, workers int) {
	b.Helper()
	var wg sync.WaitGroup
	exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		wg.Done()
		return []byte(`1`), nil
	}
	q, err := New(db, exec, Options{Workers: workers, MaxActive: b.N + 1, ResultTTL: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = q.Shutdown(ctx)
	}()
	wg.Add(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := q.Submit(testSpec(fmt.Sprint(i)), fmt.Sprintf("bench-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
	b.StopTimer()
}

func BenchmarkJobsThroughput(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("mem/workers=%d", workers), func(b *testing.B) {
			benchThroughput(b, nil, workers)
		})
		b.Run(fmt.Sprintf("durable/workers=%d", workers), func(b *testing.B) {
			db, err := store.Open(filepath.Join(b.TempDir(), "bench.db"), store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			benchThroughput(b, db, workers)
		})
	}
}

// BenchmarkJobsDedup measures the coalescing fast path: every submission
// after the first hits the active-job dedup without touching the heap or
// the store.
func BenchmarkJobsDedup(b *testing.B) {
	block := make(chan struct{})
	exec := func(ctx context.Context, j Job, progress func(core.TraceStep)) ([]byte, error) {
		<-block
		return []byte(`1`), nil
	}
	q, err := New(nil, exec, Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		close(block)
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = q.Shutdown(ctx)
	}()
	if _, _, err := q.Submit(testSpec("dedup"), "dedup"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, created, err := q.Submit(testSpec("dedup"), "dedup"); err != nil || created {
			b.Fatalf("submission %d not coalesced: (%v, %v)", i, created, err)
		}
	}
}
