package jobs

import (
	"time"

	"fairrank/internal/rng"
)

// Backoff is the retry delay policy: capped exponential growth with
// multiplicative jitter. Attempt n (1-based) waits
//
//	min(Base·2^(n-1), Max) · (1 + U[0, Jitter))
//
// The jitter decorrelates retries of jobs that failed together (e.g. a
// batch poisoned by one bad dataset snapshot), so they do not hammer the
// worker pool in lockstep.
type Backoff struct {
	// Base is the first retry's delay. <= 0 selects DefaultBackoff.Base.
	Base time.Duration
	// Max caps the exponential growth. <= 0 selects DefaultBackoff.Max.
	Max time.Duration
	// Jitter is the maximum fractional inflation in [0, 1]; out-of-range
	// values select DefaultBackoff.Jitter.
	Jitter float64
}

// DefaultBackoff is the policy used when Options.Backoff is zero.
var DefaultBackoff = Backoff{Base: 500 * time.Millisecond, Max: 30 * time.Second, Jitter: 0.25}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = DefaultBackoff.Base
	}
	if b.Max <= 0 {
		b.Max = DefaultBackoff.Max
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = DefaultBackoff.Jitter
	}
	return b
}

// Delay returns the wait before retry `attempt` (1-based: the delay after
// the first failed run is Delay(1)), drawing jitter from r.
func (b Backoff) Delay(attempt int, r *rng.RNG) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := b.Base
	for i := 1; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 && r != nil {
		d += time.Duration(float64(d) * b.Jitter * r.Float64())
	}
	return d
}
