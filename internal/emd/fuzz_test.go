package emd

import (
	"math"
	"testing"

	"fairrank/internal/testkit"
)

// Fuzz targets differential-test the EMD fast paths against the testkit
// oracles on fuzzer-shaped inputs. Seed corpora live under
// testdata/fuzz/<target>/ and are replayed by plain `go test` as well.

// normalizePMF turns raw non-negative floats into a PMF, or nil when the
// row carries no mass.
func normalizePMF(vals []float64) []float64 {
	total := 0.0
	for _, v := range vals {
		total += v
	}
	if total <= 0 {
		return nil
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v / total
	}
	return out
}

// FuzzPMFDistance checks the closed-form EMD against the explicit-flow
// oracle and the min-cost-flow Transport solver. Layout: data[0] selects the
// bin count, data[1] the ground unit, the rest supplies two PMFs. The
// committed sparse-supply-vs-dense-demand seeds reproduce the cost-epsilon
// cycling that used to hang Transport's SPFA search.
func FuzzPMFDistance(f *testing.F) {
	f.Add([]byte{10, 50, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1})
	f.Add([]byte{4, 100, 200, 0, 0, 0, 0, 0, 0, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		bins := int(data[0])%24 + 1
		unit := float64(data[1])/100 + 0.01
		vals := testkit.FiniteFloats(data[2:])
		if len(vals) < 2*bins {
			return
		}
		p := normalizePMF(vals[:bins])
		q := normalizePMF(vals[bins : 2*bins])
		if p == nil || q == nil {
			return
		}
		var o testkit.Oracle
		d := PMFDistance(p, q, unit)
		if want := o.EMDFlow(p, q, unit); math.Abs(d-want) > testkit.Tol {
			t.Fatalf("PMFDistance = %v, flow oracle = %v (p=%v q=%v unit=%v)", d, want, p, q, unit)
		}
		if back := PMFDistance(q, p, unit); math.Abs(back-d) > testkit.Tol {
			t.Fatalf("asymmetric: %v vs %v", d, back)
		}
		if d < 0 {
			t.Fatalf("negative distance %v", d)
		}
		tr, err := Transport(p, q, LinearCost(bins, bins, unit))
		if err != nil {
			t.Fatalf("Transport: %v (p=%v q=%v)", err, p, q)
		}
		if math.Abs(tr-d) > 1e-6 {
			t.Fatalf("Transport = %v, closed form = %v (p=%v q=%v unit=%v)", tr, d, p, q, unit)
		}
	})
}

// FuzzExactEMD checks the sample-space paths: Exact1D against the oracle's
// monotone-coupling flow, and ExactWp's contract of rejecting non-finite
// samples instead of sorting garbage. Layout: data[0] splits the remaining
// bytes into the two samples; values decode through SpecialFloats so NaN
// and ±Inf occur.
func FuzzExactEMD(f *testing.F) {
	f.Add([]byte{3, 10, 20, 30, 100, 150, 200})
	f.Add([]byte{1, 255, 100}) // NaN in the first sample
	f.Add([]byte{2, 254, 253, 100})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		cut := int(data[0])%(len(data)-1) + 1
		vals := testkit.SpecialFloats(data[1:])
		xs, ys := vals[:cut], vals[cut:]
		if len(xs) == 0 || len(ys) == 0 {
			return
		}
		finite := true
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
				break
			}
		}
		w1, err := ExactWp(xs, ys, 1)
		if !finite {
			if err == nil {
				t.Fatalf("ExactWp accepted non-finite samples %v / %v", xs, ys)
			}
			return
		}
		if err != nil {
			t.Fatalf("ExactWp rejected finite samples: %v", err)
		}
		var o testkit.Oracle
		ex := Exact1D(xs, ys)
		if want := o.WpFlow(xs, ys, 1); math.Abs(ex-want) > testkit.Tol {
			t.Fatalf("Exact1D = %v, flow oracle = %v (xs=%v ys=%v)", ex, want, xs, ys)
		}
		if math.Abs(w1-ex) > testkit.Tol {
			t.Fatalf("ExactWp(1) = %v, Exact1D = %v", w1, ex)
		}
	})
}
