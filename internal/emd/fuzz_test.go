package emd

import (
	"math"
	"testing"

	"fairrank/internal/testkit"
)

// Fuzz targets differential-test the EMD fast paths against the testkit
// oracles on fuzzer-shaped inputs. Seed corpora live under
// testdata/fuzz/<target>/ and are replayed by plain `go test` as well.

// normalizePMF turns raw non-negative floats into a PMF, or nil when the
// row carries no mass.
func normalizePMF(vals []float64) []float64 {
	total := 0.0
	for _, v := range vals {
		total += v
	}
	if total <= 0 {
		return nil
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v / total
	}
	return out
}

// FuzzPMFDistance checks the closed-form EMD against the explicit-flow
// oracle and the min-cost-flow Transport solver. Layout: data[0] selects the
// bin count, data[1] the ground unit, the rest supplies two PMFs. The
// committed sparse-supply-vs-dense-demand seeds reproduce the cost-epsilon
// cycling that used to hang Transport's SPFA search.
func FuzzPMFDistance(f *testing.F) {
	f.Add([]byte{10, 50, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1})
	f.Add([]byte{4, 100, 200, 0, 0, 0, 0, 0, 0, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		bins := int(data[0])%24 + 1
		unit := float64(data[1])/100 + 0.01
		vals := testkit.FiniteFloats(data[2:])
		if len(vals) < 2*bins {
			return
		}
		p := normalizePMF(vals[:bins])
		q := normalizePMF(vals[bins : 2*bins])
		if p == nil || q == nil {
			return
		}
		var o testkit.Oracle
		d := PMFDistance(p, q, unit)
		if want := o.EMDFlow(p, q, unit); math.Abs(d-want) > testkit.Tol {
			t.Fatalf("PMFDistance = %v, flow oracle = %v (p=%v q=%v unit=%v)", d, want, p, q, unit)
		}
		if back := PMFDistance(q, p, unit); math.Abs(back-d) > testkit.Tol {
			t.Fatalf("asymmetric: %v vs %v", d, back)
		}
		if d < 0 {
			t.Fatalf("negative distance %v", d)
		}
		tr, err := Transport(p, q, LinearCost(bins, bins, unit))
		if err != nil {
			t.Fatalf("Transport: %v (p=%v q=%v)", err, p, q)
		}
		if math.Abs(tr-d) > 1e-6 {
			t.Fatalf("Transport = %v, closed form = %v (p=%v q=%v unit=%v)", tr, d, p, q, unit)
		}
	})
}

// FuzzExactEMD checks the sample-space paths: Exact1D against the oracle's
// monotone-coupling flow, and ExactWp's contract of rejecting non-finite
// samples instead of sorting garbage. Layout: data[0] splits the remaining
// bytes into the two samples; values decode through SpecialFloats so NaN
// and ±Inf occur.
func FuzzExactEMD(f *testing.F) {
	f.Add([]byte{3, 10, 20, 30, 100, 150, 200})
	f.Add([]byte{1, 255, 100}) // NaN in the first sample
	f.Add([]byte{2, 254, 253, 100})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		cut := int(data[0])%(len(data)-1) + 1
		vals := testkit.SpecialFloats(data[1:])
		xs, ys := vals[:cut], vals[cut:]
		if len(xs) == 0 || len(ys) == 0 {
			return
		}
		finite := true
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
				break
			}
		}
		w1, err := ExactWp(xs, ys, 1)
		if !finite {
			if err == nil {
				t.Fatalf("ExactWp accepted non-finite samples %v / %v", xs, ys)
			}
			return
		}
		if err != nil {
			t.Fatalf("ExactWp rejected finite samples: %v", err)
		}
		var o testkit.Oracle
		ex := Exact1D(xs, ys)
		if want := o.WpFlow(xs, ys, 1); math.Abs(ex-want) > testkit.Tol {
			t.Fatalf("Exact1D = %v, flow oracle = %v (xs=%v ys=%v)", ex, want, xs, ys)
		}
		if math.Abs(w1-ex) > testkit.Tol {
			t.Fatalf("ExactWp(1) = %v, Exact1D = %v", w1, ex)
		}
	})
}

// FuzzFixedQuant checks the fixed-point quantized kernel's contract on
// fuzzer-shaped inputs: FixedCDF never panics and rejects non-finite
// values; quantize→dequantize round-trips within the documented epsilon;
// and on normalized pairs the quantized distance and the average interval
// both bracket the exact closed form. Layout: data[0] selects the bin
// count, the rest decodes through SpecialFloats so NaN/±Inf and
// zero-mass rows occur.
func FuzzFixedQuant(f *testing.F) {
	f.Add([]byte{8, 10, 20, 30, 40, 50, 60, 70, 80, 80, 70, 60, 50, 40, 30, 20, 10})
	f.Add([]byte{3, 255, 100, 100})          // NaN must be rejected
	f.Add([]byte{2, 0, 0, 0, 0})             // zero-mass rows
	f.Add([]byte{1, 250, 250})               // two point masses
	f.Add([]byte{4, 254, 253, 252, 251, 10}) // ±Inf and negatives
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		bins := int(data[0])%32 + 1
		vals := testkit.SpecialFloats(data[1:])
		if len(vals) < bins {
			return
		}
		raw := vals[:bins]
		finite := true
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
				break
			}
		}
		q, ok := FixedCDF(raw, FixedScale)
		if ok != finite {
			t.Fatalf("FixedCDF ok=%v for finite=%v (%v)", ok, finite, raw)
		}
		if !ok {
			return
		}
		deq := DequantizeCDF(q, FixedScale)
		cum := 0.0
		for i, v := range raw {
			cum += v
			if eps := 0.5/float64(FixedScale) + 1e-12*(1+math.Abs(cum)); math.Abs(deq[i]-cum) > eps {
				t.Fatalf("round-trip bin %d: %v vs %v exceeds ε=%v", i, deq[i], cum, eps)
			}
		}
		p := normalizePMF(raw)
		var other []float64
		if len(vals) >= 2*bins {
			second := vals[bins : 2*bins]
			for _, v := range second {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return
				}
			}
			other = normalizePMF(second)
		}
		if p == nil || other == nil {
			return
		}
		qp, _ := FixedCDF(p, FixedScale)
		qq, ok := FixedCDF(other, FixedScale)
		if !ok {
			t.Fatalf("FixedCDF rejected a normalized PMF %v", other)
		}
		exact := PMFDistance(p, other, 0.125)
		if got, eps := FixedDistance(qp, qq, 0.125, FixedScale), FixedEpsilon(bins, 0.125, FixedScale); math.Abs(got-exact) > eps {
			t.Fatalf("FixedDistance %v vs exact %v exceeds ε=%v", got, exact, eps)
		}
		lo, hi, _ := FixedAvgInterval([][]int64{qp, qq}, 0.125, FixedScale, nil)
		if lo > exact || exact > hi {
			t.Fatalf("exact %v outside fixed interval [%v, %v]", exact, lo, hi)
		}
	})
}
