package emd

import (
	"math"
	"testing"
	"testing/quick"

	"fairrank/internal/histogram"
	"fairrank/internal/rng"
)

func hist(bins int, vals ...float64) *histogram.Histogram {
	h := histogram.MustNew(bins, 0, 1)
	h.AddAll(vals)
	return h
}

func TestDistanceIdentical(t *testing.T) {
	a := hist(10, 0.1, 0.5, 0.9)
	d, err := Distance(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("EMD(a,a) = %v, want 0", d)
	}
}

func TestDistanceKnownShift(t *testing.T) {
	// All mass in bin 0 vs all mass in bin 9: EMD = 9 bins * 0.1 = 0.9.
	a := hist(10, 0.05)
	b := hist(10, 0.95)
	d, err := Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.9) > 1e-12 {
		t.Fatalf("EMD = %v, want 0.9", d)
	}
}

func TestDistanceGenderBiasCalibration(t *testing.T) {
	// The paper's f6 shape: one group uniform in (0.8,1], the other in
	// [0,0.2). EMD should be ~0.8 — exactly what Table 3 reports for
	// balanced on f6.
	r := rng.New(1)
	male := histogram.MustNew(10, 0, 1)
	female := histogram.MustNew(10, 0, 1)
	for i := 0; i < 5000; i++ {
		male.Add(r.FloatRange(0.8, 1.0))
		female.Add(r.FloatRange(0, 0.2))
	}
	d, err := Distance(male, female)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.8) > 0.01 {
		t.Fatalf("gender-bias EMD = %v, want ~0.8", d)
	}
}

func TestDistanceGroundIndex(t *testing.T) {
	// Extremes under index ground distance: exactly 1.
	a := hist(10, 0.0)
	b := hist(10, 0.9999)
	d, err := DistanceGround(a, b, GroundIndex)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("index-ground EMD = %v, want 1", d)
	}
}

func TestDistanceIncompatible(t *testing.T) {
	a := hist(10, 0.5)
	b := histogram.MustNew(5, 0, 1)
	if _, err := Distance(a, b); err != ErrIncompatible {
		t.Fatalf("err = %v, want ErrIncompatible", err)
	}
	if _, err := Distance(nil, a); err != ErrIncompatible {
		t.Fatalf("nil err = %v, want ErrIncompatible", err)
	}
}

func TestDistanceEmptyHistogramsUniform(t *testing.T) {
	// Two empty histograms both present as uniform: distance 0.
	a := histogram.MustNew(10, 0, 1)
	b := histogram.MustNew(10, 0, 1)
	d, err := Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("EMD(empty,empty) = %v", d)
	}
}

// Metric axioms for the closed-form 1-D EMD on random PMFs.
func TestEMDMetricAxiomsProperty(t *testing.T) {
	gen := func(r *rng.RNG, n int) []float64 {
		p := make([]float64, n)
		s := 0.0
		for i := range p {
			p[i] = r.Float64()
			s += p[i]
		}
		for i := range p {
			p[i] /= s
		}
		return p
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(30)
		p, q, z := gen(r, n), gen(r, n), gen(r, n)
		const unit = 0.1
		dpq := PMFDistance(p, q, unit)
		dqp := PMFDistance(q, p, unit)
		dpp := PMFDistance(p, p, unit)
		dpz := PMFDistance(p, z, unit)
		dzq := PMFDistance(z, q, unit)
		switch {
		case dpq < 0:
			return false // non-negativity
		case math.Abs(dpq-dqp) > 1e-12:
			return false // symmetry
		case dpp > 1e-12:
			return false // identity
		case dpq > dpz+dzq+1e-9:
			return false // triangle inequality
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The closed form must agree with the general transportation solver under
// the linear ground distance.
func TestClosedFormMatchesFlowProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(12)
		p := make([]float64, n)
		q := make([]float64, n)
		sp, sq := 0.0, 0.0
		for i := range p {
			p[i] = r.Float64()
			q[i] = r.Float64()
			sp += p[i]
			sq += q[i]
		}
		for i := range p {
			p[i] /= sp
			q[i] /= sq
		}
		const unit = 0.25
		closed := PMFDistance(p, q, unit)
		flow, err := Transport(p, q, LinearCost(n, n, unit))
		if err != nil {
			return false
		}
		return math.Abs(closed-flow) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTransportValidation(t *testing.T) {
	if _, err := Transport(nil, []float64{1}, nil); err == nil {
		t.Error("empty supply accepted")
	}
	if _, err := Transport([]float64{1}, []float64{1}, [][]float64{}); err == nil {
		t.Error("bad cost rows accepted")
	}
	if _, err := Transport([]float64{1}, []float64{1}, [][]float64{{1, 2}}); err == nil {
		t.Error("bad cost cols accepted")
	}
	if _, err := Transport([]float64{-1, 2}, []float64{1}, [][]float64{{0}, {0}}); err == nil {
		t.Error("negative mass accepted")
	}
	if _, err := Transport([]float64{1}, []float64{3}, [][]float64{{0}}); err == nil {
		t.Error("unbalanced masses accepted")
	}
	if _, err := Transport([]float64{math.NaN()}, []float64{1}, [][]float64{{0}}); err == nil {
		t.Error("NaN mass accepted")
	}
}

func TestTransportZeroMass(t *testing.T) {
	d, err := Transport([]float64{0, 0}, []float64{0, 0}, LinearCost(2, 2, 1))
	if err != nil || d != 0 {
		t.Fatalf("zero-mass transport = %v, %v", d, err)
	}
}

func TestTransportAsymmetricBins(t *testing.T) {
	// 2 sources, 3 sinks. All mass at source 0; demand split across sinks.
	p := []float64{1, 0}
	q := []float64{0.5, 0.25, 0.25}
	cost := [][]float64{{0, 1, 2}, {1, 0, 1}}
	d, err := Transport(p, q, cost)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*0 + 0.25*1 + 0.25*2
	if math.Abs(d-want) > 1e-6 {
		t.Fatalf("transport = %v, want %v", d, want)
	}
}

func TestThresholdedCostCaps(t *testing.T) {
	c := ThresholdedCost(5, 5, 1, 2)
	if c[0][4] != 2 || c[0][1] != 1 || c[2][2] != 0 {
		t.Fatalf("thresholded cost wrong: %v", c)
	}
}

func TestThresholdedEMDLowerBound(t *testing.T) {
	// Thresholding can only decrease the optimal cost.
	r := rng.New(9)
	n := 8
	p := make([]float64, n)
	q := make([]float64, n)
	sp, sq := 0.0, 0.0
	for i := range p {
		p[i], q[i] = r.Float64(), r.Float64()
		sp += p[i]
		sq += q[i]
	}
	for i := range p {
		p[i] /= sp
		q[i] /= sq
	}
	full, err := Transport(p, q, LinearCost(n, n, 1))
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Transport(p, q, ThresholdedCost(n, n, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if capped > full+1e-9 {
		t.Fatalf("thresholded EMD %v exceeds full EMD %v", capped, full)
	}
}

func TestAveragePairwise(t *testing.T) {
	a := hist(10, 0.05) // bin 0
	b := hist(10, 0.95) // bin 9
	c := hist(10, 0.55) // bin 5
	got, err := AveragePairwise([]*histogram.Histogram{a, b, c}, GroundScore)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.9 + 0.5 + 0.4) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("avg pairwise = %v, want %v", got, want)
	}
}

func TestAveragePairwiseDegenerate(t *testing.T) {
	if d, err := AveragePairwise(nil, GroundScore); err != nil || d != 0 {
		t.Fatalf("nil: %v, %v", d, err)
	}
	one := []*histogram.Histogram{hist(10, 0.5)}
	if d, err := AveragePairwise(one, GroundScore); err != nil || d != 0 {
		t.Fatalf("single: %v, %v", d, err)
	}
}

func TestAveragePairwiseIncompatible(t *testing.T) {
	hs := []*histogram.Histogram{hist(10, 0.5), histogram.MustNew(5, 0, 1)}
	if _, err := AveragePairwise(hs, GroundScore); err != ErrIncompatible {
		t.Fatalf("err = %v, want ErrIncompatible", err)
	}
}
