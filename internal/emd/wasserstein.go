package emd

import (
	"errors"
	"math"
	"sort"
)

// ExactWp computes the exact p-Wasserstein distance between the empirical
// distributions of two 1-D samples, using the quantile-coupling identity
// W_p(a,b) = (∫₀¹ |F_a⁻¹(q) - F_b⁻¹(q)|ᵖ dq)^(1/p), evaluated piecewise
// over the merged quantile grid of the two samples. p = 1 coincides with
// Exact1D; p = 2 penalizes large score gaps quadratically, an alternative
// unfairness emphasis the paper's future-work metric search contemplates.
func ExactWp(xs, ys []float64, p float64) (float64, error) {
	if p < 1 || math.IsNaN(p) || math.IsInf(p, 0) {
		return 0, errors.New("emd: Wasserstein order must be >= 1")
	}
	if len(xs) == 0 || len(ys) == 0 {
		return 0, errors.New("emd: empty sample")
	}
	// NaN breaks sort.Float64s ordering and Inf makes the integral diverge;
	// both would silently produce garbage, so reject them up front.
	for _, s := range [2][]float64{xs, ys} {
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, errors.New("emd: non-finite sample value")
			}
		}
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)

	// Sweep quantile levels: the quantile functions are step functions
	// with jumps at i/len(a) and j/len(b).
	var (
		i, j  int
		level float64
		total float64
	)
	for level < 1 {
		nextA := float64(i+1) / float64(len(a))
		nextB := float64(j+1) / float64(len(b))
		next := math.Min(nextA, nextB)
		if next > 1 {
			next = 1
		}
		d := math.Abs(a[i] - b[j])
		total += math.Pow(d, p) * (next - level)
		level = next
		if nextA <= next && i+1 < len(a) {
			i++
		}
		if nextB <= next && j+1 < len(b) {
			j++
		}
		if next == 1 {
			break
		}
	}
	return math.Pow(total, 1/p), nil
}
