package emd

import (
	"math"

	"fairrank/internal/histogram"
)

// IrregularDistance computes the EMD between two irregular (arbitrary-edge)
// histograms via the transportation solver, with ground distance equal to
// the absolute difference of bin centers. This is what connects quantile
// binning (histogram.QuantileEdges) to the unfairness measure: the two
// histograms may have different bin layouts.
func IrregularDistance(a, b *histogram.Irregular) (float64, error) {
	if a == nil || b == nil {
		return 0, ErrIncompatible
	}
	p, q := a.PMF(), b.PMF()
	cost := make([][]float64, len(p))
	for i := range cost {
		cost[i] = make([]float64, len(q))
		for j := range cost[i] {
			cost[i][j] = math.Abs(a.BinCenter(i) - b.BinCenter(j))
		}
	}
	return Transport(p, q, cost)
}
