// Package emd implements the Earth Mover's Distance used by the paper to
// quantify unfairness between per-partition score distributions, together
// with a general min-cost-flow transportation solver, a thresholded variant
// in the spirit of Pele & Werman (ICCV 2009), and a family of alternative
// histogram distances the paper lists as future-work metrics.
//
// All distances operate on normalized histograms (probability mass
// functions). For one-dimensional histograms with equally spaced bins the
// EMD has the classic closed form
//
//	EMD(p, q) = Σ_i |Σ_{j<=i} (p_j - q_j)| · w
//
// where w is the ground distance between adjacent bins. fairrank measures
// the ground distance in *score units* (bin width), so that, e.g., a scoring
// function giving men scores above 0.8 and women scores below 0.2 yields an
// EMD of about 0.8 — matching the values reported in Table 3 of the paper.
package emd

import (
	"errors"
	"math"

	"fairrank/internal/histogram"
)

// Ground selects how the ground distance between bins is measured.
type Ground int

const (
	// GroundScore measures bin distance in score units: d(i,j) = w·|i-j|
	// where w is the bin width. This is the paper-calibrated default.
	GroundScore Ground = iota
	// GroundIndex measures bin distance in normalized index units:
	// d(i,j) = |i-j| / (bins-1), so the maximum possible EMD is exactly 1.
	GroundIndex
)

// ErrIncompatible is returned when two histograms cannot be compared.
var ErrIncompatible = errors.New("emd: incompatible histograms")

// Distance computes the 1-D EMD between two compatible fixed-bin histograms
// using the closed form, with the GroundScore ground distance.
func Distance(a, b *histogram.Histogram) (float64, error) {
	return DistanceGround(a, b, GroundScore)
}

// DistanceGround computes the 1-D EMD with an explicit ground distance.
func DistanceGround(a, b *histogram.Histogram, g Ground) (float64, error) {
	if a == nil || b == nil || !a.Compatible(b) {
		return 0, ErrIncompatible
	}
	w := unitDistance(a, g)
	return PMFDistance(a.PMF(), b.PMF(), w), nil
}

func unitDistance(h *histogram.Histogram, g Ground) float64 {
	switch g {
	case GroundIndex:
		if h.Bins() <= 1 {
			return 0
		}
		return 1 / float64(h.Bins()-1)
	default:
		return h.BinWidth()
	}
}

// PMFDistance computes the closed-form 1-D EMD between two PMFs over
// equally spaced bins with ground distance `unit` between adjacent bins.
// The PMFs must have equal length; each should sum to 1 (the function does
// not renormalize).
func PMFDistance(p, q []float64, unit float64) float64 {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	cum, total := 0.0, 0.0
	for i := 0; i < n; i++ {
		cum += p[i] - q[i]
		total += math.Abs(cum)
	}
	return total * unit
}

// AveragePairwise computes the average EMD over all unordered pairs of the
// given histograms; this is unfairness(P, f) of Definition 2 in the paper.
// With fewer than two histograms the average is 0.
func AveragePairwise(hs []*histogram.Histogram, g Ground) (float64, error) {
	if len(hs) < 2 {
		return 0, nil
	}
	sum := 0.0
	pairs := 0
	pmfs := make([][]float64, len(hs))
	for i, h := range hs {
		if h == nil || !hs[0].Compatible(h) {
			return 0, ErrIncompatible
		}
		pmfs[i] = h.PMF()
	}
	unit := unitDistance(hs[0], g)
	for i := 0; i < len(hs); i++ {
		for j := i + 1; j < len(hs); j++ {
			sum += PMFDistance(pmfs[i], pmfs[j], unit)
			pairs++
		}
	}
	return sum / float64(pairs), nil
}
