package emd

import (
	"math"
	"testing"

	"fairrank/internal/testkit"
)

func TestFixedCDFRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		g := testkit.NewGen(seed)
		bins := g.R.IntRange(1, 48)
		p := g.PMF(bins)
		q, ok := FixedCDF(p, FixedScale)
		if !ok {
			t.Fatalf("seed %d: FixedCDF rejected a finite PMF", seed)
		}
		deq := DequantizeCDF(q, FixedScale)
		cum := 0.0
		eps := 0.5/float64(FixedScale) + 1e-12
		for i, v := range p {
			cum += v
			if math.Abs(deq[i]-cum) > eps {
				t.Fatalf("seed %d bin %d: round-trip %v vs CDF %v exceeds ε=%v", seed, i, deq[i], cum, eps)
			}
		}
	}
}

func TestFixedCDFRejects(t *testing.T) {
	if _, ok := FixedCDF([]float64{math.NaN()}, FixedScale); ok {
		t.Fatal("NaN accepted")
	}
	if _, ok := FixedCDF([]float64{math.Inf(1)}, FixedScale); ok {
		t.Fatal("+Inf accepted")
	}
	if _, ok := FixedCDF([]float64{0.5, 0.5}, 0); ok {
		t.Fatal("scale 0 accepted")
	}
}

func TestFixedCDFDegenerate(t *testing.T) {
	// Degenerate histogram shapes must quantize without panicking.
	if q, ok := FixedCDF(nil, FixedScale); !ok || len(q) != 0 {
		t.Fatalf("empty PMF: q=%v ok=%v", q, ok)
	}
	if q, ok := FixedCDF([]float64{0, 0, 0}, FixedScale); !ok || q[2] != 0 {
		t.Fatalf("zero-mass PMF: q=%v ok=%v", q, ok)
	}
	if q, ok := FixedCDF([]float64{1}, FixedScale); !ok || q[0] != FixedScale {
		t.Fatalf("point mass: q=%v ok=%v", q, ok)
	}
}

func TestFixedDistanceWithinEpsilon(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		g := testkit.NewGen(500 + seed)
		bins := g.R.IntRange(1, 40)
		unit := g.R.Float64() + 0.01
		p, q := g.PMF(bins), g.PMF(bins)
		qp, ok1 := FixedCDF(p, FixedScale)
		qq, ok2 := FixedCDF(q, FixedScale)
		if !ok1 || !ok2 {
			t.Fatalf("seed %d: quantization rejected finite PMFs", seed)
		}
		got := FixedDistance(qp, qq, unit, FixedScale)
		want := PMFDistance(p, q, unit)
		if eps := FixedEpsilon(bins, unit, FixedScale); math.Abs(got-want) > eps {
			t.Fatalf("seed %d: fixed %v vs exact %v exceeds ε=%v", seed, got, want, eps)
		}
	}
}

func TestFixedPairwiseSumMatchesNaive(t *testing.T) {
	var scratch []int64
	for seed := uint64(0); seed < 60; seed++ {
		g := testkit.NewGen(2000 + seed)
		k := g.R.IntRange(2, 12)
		bins := g.R.IntRange(1, 16)
		rows := make([][]int64, k)
		for i := range rows {
			rows[i], _ = FixedCDF(g.PMF(bins), FixedScale)
		}
		var naive int64
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				for b := 0; b < bins; b++ {
					d := rows[i][b] - rows[j][b]
					if d < 0 {
						d = -d
					}
					naive += d
				}
			}
		}
		var got float64
		got, scratch = FixedPairwiseSum(rows, scratch)
		if got != float64(naive) {
			t.Fatalf("seed %d: kernel %v vs naive %d", seed, got, naive)
		}
	}
}

func TestFixedPairwiseSumDegenerate(t *testing.T) {
	if s, _ := FixedPairwiseSum(nil, nil); s != 0 {
		t.Fatalf("no rows: %v", s)
	}
	if s, _ := FixedPairwiseSum([][]int64{{1, 2}}, nil); s != 0 {
		t.Fatalf("single row: %v", s)
	}
	// Ragged rows truncate to the shortest, mirroring the min-length pair
	// convention.
	rows := [][]int64{{10, 20, 30}, {0, 5}}
	s, _ := FixedPairwiseSum(rows, nil)
	if s != 25 {
		t.Fatalf("ragged rows: %v, want 25", s)
	}
}

func TestFixedPairwiseSumScratchReuse(t *testing.T) {
	rows := [][]int64{{1, 2}, {3, 4}, {5, 6}}
	_, scratch := FixedPairwiseSum(rows, nil)
	_, scratch2 := FixedPairwiseSum(rows, scratch)
	if &scratch[0] != &scratch2[0] {
		t.Fatal("scratch was reallocated despite sufficient capacity")
	}
}

func TestFixedAvgIntervalContainsExact(t *testing.T) {
	var scratch []int64
	for seed := uint64(0); seed < 80; seed++ {
		g := testkit.NewGen(3000 + seed)
		k := g.R.IntRange(2, 20)
		bins := g.R.IntRange(1, 32)
		unit := g.R.Float64() + 0.01
		pmfs := make([][]float64, k)
		rows := make([][]int64, k)
		for i := range pmfs {
			pmfs[i] = g.PMF(bins)
			rows[i], _ = FixedCDF(pmfs[i], FixedScale)
		}
		// The engine's exact average: serial (i, j)-order float sum.
		sum := 0.0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				sum += PMFDistance(pmfs[i], pmfs[j], unit)
			}
		}
		exact := sum / float64(k*(k-1)/2)
		var lo, hi float64
		lo, hi, scratch = FixedAvgInterval(rows, unit, FixedScale, scratch)
		if lo > exact || exact > hi {
			t.Fatalf("seed %d: exact avg %v outside [%v, %v] (k=%d bins=%d)", seed, exact, lo, hi, k, bins)
		}
	}
}

func TestFixedAvgIntervalDegenerate(t *testing.T) {
	if lo, hi, _ := FixedAvgInterval(nil, 1, FixedScale, nil); lo != 0 || hi != 0 {
		t.Fatalf("no rows: [%v, %v]", lo, hi)
	}
	row, _ := FixedCDF([]float64{1}, FixedScale)
	if lo, hi, _ := FixedAvgInterval([][]int64{row}, 1, FixedScale, nil); lo != 0 || hi != 0 {
		t.Fatalf("single row: [%v, %v]", lo, hi)
	}
}
