package emd

import (
	"math"
	"testing"
	"testing/quick"

	"fairrank/internal/histogram"
	"fairrank/internal/rng"
)

func TestMetricStringRoundTrip(t *testing.T) {
	for _, m := range []Metric{MetricEMD, MetricL1, MetricTV, MetricChiSquare, MetricJS, MetricKS, MetricHellinger} {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v: got %v, err %v", m, got, err)
		}
	}
	if _, err := ParseMetric("nope"); err == nil {
		t.Error("unknown metric accepted")
	}
	if s := Metric(99).String(); s != "metric(99)" {
		t.Errorf("unknown String = %q", s)
	}
}

func TestCompareKnownValues(t *testing.T) {
	// p = all mass bin 0, q = all mass bin 1 (of 2 bins, width 0.5).
	p := hist(2, 0.1)
	q := hist(2, 0.9)
	cases := []struct {
		m    Metric
		want float64
	}{
		{MetricEMD, 0.5}, // one-bin shift * width 0.5
		{MetricL1, 2},
		{MetricTV, 1},
		{MetricChiSquare, 2},
		{MetricJS, 1},
		{MetricKS, 1},
		{MetricHellinger, 1},
	}
	for _, c := range cases {
		got, err := Compare(p, q, c.m)
		if err != nil {
			t.Fatalf("%v: %v", c.m, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestCompareIdenticalZero(t *testing.T) {
	h := hist(10, 0.1, 0.4, 0.8)
	for _, m := range []Metric{MetricEMD, MetricL1, MetricTV, MetricChiSquare, MetricJS, MetricKS, MetricHellinger} {
		got, err := Compare(h, h.Clone(), m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got != 0 {
			t.Errorf("%v(h,h) = %v, want 0", m, got)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	a := hist(10, 0.5)
	b := histogram.MustNew(4, 0, 1)
	if _, err := Compare(a, b, MetricL1); err != ErrIncompatible {
		t.Errorf("incompatible err = %v", err)
	}
	if _, err := Compare(a, a, Metric(99)); err == nil {
		t.Error("unknown metric accepted by Compare")
	}
}

// All metrics must be symmetric and non-negative on random PMF pairs.
func TestMetricsSymmetryProperty(t *testing.T) {
	metrics := []Metric{MetricEMD, MetricL1, MetricTV, MetricChiSquare, MetricJS, MetricKS, MetricHellinger}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := histogram.MustNew(10, 0, 1)
		b := histogram.MustNew(10, 0, 1)
		for i := 0; i < 50; i++ {
			a.Add(r.Float64())
			b.Add(r.Float64())
		}
		for _, m := range metrics {
			ab, err1 := Compare(a, b, m)
			ba, err2 := Compare(b, a, m)
			if err1 != nil || err2 != nil {
				return false
			}
			if ab < 0 || math.Abs(ab-ba) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestJensenShannonBounded(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := make([]float64, 10)
		q := make([]float64, 10)
		sp, sq := 0.0, 0.0
		for i := range p {
			p[i], q[i] = r.Float64(), r.Float64()
			sp += p[i]
			sq += q[i]
		}
		for i := range p {
			p[i] /= sp
			q[i] /= sq
		}
		js := JensenShannon(p, q)
		return js >= 0 && js <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChiSquareSkipsEmptyJointBins(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{0.5, 0.5, 0}
	if d := ChiSquare(p, q); d != 0 {
		t.Fatalf("chi2 with empty joint bin = %v", d)
	}
}

func TestKSMatchesManual(t *testing.T) {
	p := []float64{0.6, 0.4, 0}
	q := []float64{0.2, 0.2, 0.6}
	// CDFs: p = .6 1 1; q = .2 .4 1 → gaps .4, .6, 0.
	if got := KolmogorovSmirnov(p, q); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("KS = %v, want 0.6", got)
	}
}
