package emd

import (
	"math"
	"testing"
	"testing/quick"

	"fairrank/internal/rng"
)

func TestExactWpValidation(t *testing.T) {
	if _, err := ExactWp(nil, []float64{1}, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := ExactWp([]float64{1}, []float64{1}, 0.5); err == nil {
		t.Error("order < 1 accepted")
	}
	if _, err := ExactWp([]float64{1}, []float64{1}, math.NaN()); err == nil {
		t.Error("NaN order accepted")
	}
}

func TestExactWpIdentical(t *testing.T) {
	xs := []float64{0.1, 0.5, 0.9}
	for _, p := range []float64{1, 2, 3} {
		d, err := ExactWp(xs, xs, p)
		if err != nil || d != 0 {
			t.Fatalf("W%v(x,x) = %v, %v", p, d, err)
		}
	}
}

func TestExactWpShift(t *testing.T) {
	// For a pure shift c, W_p = c for every p.
	xs := []float64{0.1, 0.3, 0.5}
	ys := []float64{0.3, 0.5, 0.7}
	for _, p := range []float64{1, 2, 4} {
		d, err := ExactWp(xs, ys, p)
		if err != nil || math.Abs(d-0.2) > 1e-12 {
			t.Fatalf("W%v shift = %v, %v (want 0.2)", p, d, err)
		}
	}
}

// W1 from the quantile coupling must match the CDF-based Exact1D.
func TestW1MatchesExact1DProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n, m := 1+r.Intn(50), 1+r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, m)
		for i := range xs {
			xs[i] = r.Float64()
		}
		for i := range ys {
			ys[i] = r.Float64()
		}
		w1, err := ExactWp(xs, ys, 1)
		if err != nil {
			return false
		}
		return math.Abs(w1-Exact1D(xs, ys)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: W_p is non-decreasing in p (Jensen / Lyapunov inequality).
func TestWpMonotoneInOrderProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i], ys[i] = r.Float64(), r.Float64()
		}
		prev := 0.0
		for _, p := range []float64{1, 1.5, 2, 3} {
			d, err := ExactWp(xs, ys, p)
			if err != nil || d < prev-1e-9 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestW2EmphasizesOutliers(t *testing.T) {
	// Same W1 mass movement, but concentrated vs spread: W2 must be
	// larger for the concentrated big jump.
	base := []float64{0, 0, 0, 0}
	spread := []float64{0.25, 0.25, 0.25, 0.25} // each moves 0.25
	outlier := []float64{0, 0, 0, 1.0}          // one moves 1.0
	w1s, _ := ExactWp(base, spread, 1)
	w1o, _ := ExactWp(base, outlier, 1)
	if math.Abs(w1s-w1o) > 1e-12 {
		t.Fatalf("W1 differs: %v vs %v", w1s, w1o)
	}
	w2s, _ := ExactWp(base, spread, 2)
	w2o, _ := ExactWp(base, outlier, 2)
	if !(w2o > w2s) {
		t.Fatalf("W2 outlier %v not above spread %v", w2o, w2s)
	}
}
