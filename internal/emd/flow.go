package emd

import (
	"errors"
	"math"
)

// Transport solves the balanced transportation problem underlying the EMD
// for an arbitrary ground-distance matrix: move the mass of supply PMF p
// onto demand PMF q at minimum total cost, where cost[i][j] is the cost of
// moving one unit of mass from source bin i to sink bin j.
//
// It returns the minimum total cost. Both PMFs must sum to (approximately)
// the same mass. The solver is a successive-shortest-paths min-cost-flow
// specialized to the bipartite transportation structure; bin counts in
// fairrank are small (tens), so the O(V·E·flow-steps) bound is irrelevant
// in practice, but correctness against the closed form is property-tested.
func Transport(p, q []float64, cost [][]float64) (float64, error) {
	n, m := len(p), len(q)
	if n == 0 || m == 0 {
		return 0, errors.New("emd: empty distribution")
	}
	if len(cost) != n {
		return 0, errors.New("emd: cost matrix has wrong number of rows")
	}
	for _, row := range cost {
		if len(row) != m {
			return 0, errors.New("emd: cost matrix has wrong number of columns")
		}
	}
	sp, sq := 0.0, 0.0
	for _, v := range p {
		if v < 0 || math.IsNaN(v) {
			return 0, errors.New("emd: negative or NaN mass in supply")
		}
		sp += v
	}
	for _, v := range q {
		if v < 0 || math.IsNaN(v) {
			return 0, errors.New("emd: negative or NaN mass in demand")
		}
		sq += v
	}
	if math.Abs(sp-sq) > 1e-6*(sp+sq+1) {
		return 0, errors.New("emd: supply and demand masses differ")
	}
	if sp == 0 {
		return 0, nil
	}

	// Scale mass to integers to avoid floating-point flow residue issues:
	// work in units of 1e-9 of total mass.
	const scale = 1e9
	supply := make([]int64, n)
	demand := make([]int64, m)
	var totS, totD int64
	for i, v := range p {
		supply[i] = int64(math.Round(v / sp * scale))
		totS += supply[i]
	}
	for j, v := range q {
		demand[j] = int64(math.Round(v / sq * scale))
		totD += demand[j]
	}
	// Fix rounding drift on the largest entries.
	adjust(supply, scale-totS)
	adjust(demand, scale-totD)

	f := newFlowNet(n, m, cost)
	costTotal, err := f.minCost(supply, demand)
	if err != nil {
		return 0, err
	}
	return costTotal / scale * sp, nil
}

// adjust adds delta to the largest element of xs (delta may be negative).
func adjust(xs []int64, delta int64) {
	if delta == 0 {
		return
	}
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	xs[best] += delta
}

// flowNet is a min-cost-flow network for the transportation problem:
// node 0 = super-source, nodes 1..n = sources, nodes n+1..n+m = sinks,
// node n+m+1 = super-sink.
type flowNet struct {
	n, m  int
	head  []int
	next  []int
	to    []int
	cap   []int64
	costE []float64
}

func newFlowNet(n, m int, cost [][]float64) *flowNet {
	f := &flowNet{n: n, m: m}
	nodes := n + m + 2
	f.head = make([]int, nodes)
	for i := range f.head {
		f.head[i] = -1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			f.addEdge(1+i, 1+n+j, 0, cost[i][j])
		}
	}
	return f
}

func (f *flowNet) addEdge(u, v int, capacity int64, c float64) {
	f.to = append(f.to, v)
	f.cap = append(f.cap, capacity)
	f.costE = append(f.costE, c)
	f.next = append(f.next, f.head[u])
	f.head[u] = len(f.to) - 1

	f.to = append(f.to, u)
	f.cap = append(f.cap, 0)
	f.costE = append(f.costE, -c)
	f.next = append(f.next, f.head[v])
	f.head[v] = len(f.to) - 1
}

// minCost pushes all supply to all demand and returns the total cost in
// integer-mass units.
func (f *flowNet) minCost(supply, demand []int64) (float64, error) {
	src := 0
	dst := f.n + f.m + 1
	var need int64
	for i, s := range supply {
		if s > 0 {
			f.addEdge(src, 1+i, s, 0)
			need += s
		}
	}
	for j, d := range demand {
		if d > 0 {
			f.addEdge(1+f.n+j, dst, d, 0)
		}
	}
	// Middle edges currently have zero capacity; open them fully.
	for e := 0; e < len(f.to); e += 2 {
		u := f.to[e^1]
		if u >= 1 && u <= f.n && f.to[e] >= 1+f.n && f.to[e] <= f.n+f.m {
			f.cap[e] = need
		}
	}

	nodes := f.n + f.m + 2
	total := 0.0
	dist := make([]float64, nodes)
	inQueue := make([]bool, nodes)
	prevEdge := make([]int, nodes)

	// The relaxation epsilon must scale with the cost magnitude: residual
	// cycles whose exact cost is zero accumulate rounding error on the order
	// of 1e-16 × |cost|, and an absolute 1e-15 guard reads that as a real
	// improvement, relaxing the same cycle forever. Found by differential
	// fuzzing against the closed form (see differential_test.go).
	maxCost := 0.0
	for _, c := range f.costE {
		if a := math.Abs(c); a > maxCost {
			maxCost = a
		}
	}
	eps := 1e-9 * (maxCost + 1)
	// Belt and braces: SPFA on a graph free of negative cycles pops each node
	// at most |V| times per phase; far beyond that means float noise built a
	// negative cycle the epsilon missed, so fail instead of spinning.
	popBudget := 4 * nodes * nodes * (f.n*f.m + nodes)

	for need > 0 {
		// Bellman-Ford / SPFA shortest path by cost.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		inQueue[src] = true
		pops := 0
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			if pops++; pops > popBudget {
				return 0, errors.New("emd: flow search cycling (degenerate costs)")
			}
			for e := f.head[u]; e != -1; e = f.next[e] {
				if f.cap[e] <= 0 {
					continue
				}
				v := f.to[e]
				nd := dist[u] + f.costE[e]
				if nd < dist[v]-eps {
					dist[v] = nd
					prevEdge[v] = e
					if !inQueue[v] {
						queue = append(queue, v)
						inQueue[v] = true
					}
				}
			}
		}
		if math.IsInf(dist[dst], 1) {
			return 0, errors.New("emd: flow network disconnected")
		}
		// Find bottleneck along the path and push.
		push := need
		for v := dst; v != src; {
			e := prevEdge[v]
			if f.cap[e] < push {
				push = f.cap[e]
			}
			v = f.to[e^1]
		}
		for v := dst; v != src; {
			e := prevEdge[v]
			f.cap[e] -= push
			f.cap[e^1] += push
			v = f.to[e^1]
		}
		total += dist[dst] * float64(push)
		need -= push
	}
	return total, nil
}

// LinearCost builds the |i-j|·unit ground-distance matrix for n source and
// m sink bins, the matrix under which Transport reproduces the 1-D EMD.
func LinearCost(n, m int, unit float64) [][]float64 {
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, m)
		for j := range c[i] {
			c[i][j] = math.Abs(float64(i-j)) * unit
		}
	}
	return c
}

// ThresholdedCost builds the Pele-Werman style thresholded ground distance
// min(|i-j|·unit, t). Thresholding makes the EMD robust to outlier bins and
// is the basis of the fast EMD variants cited by the paper.
func ThresholdedCost(n, m int, unit, t float64) [][]float64 {
	c := LinearCost(n, m, unit)
	for i := range c {
		for j := range c[i] {
			if c[i][j] > t {
				c[i][j] = t
			}
		}
	}
	return c
}
