package emd

import "sort"

// Exact1D computes the exact Earth Mover's Distance between the empirical
// distributions of two 1-D samples, without histogram binning: it is the
// L1 distance between the two empirical CDFs, computed in O(n log n) by a
// sweep over the merged sorted samples. Each sample is treated as a uniform
// distribution over its points.
//
// The paper quantifies unfairness on binned histograms; Exact1D is the
// bin-free limit, used by the AblationBins benchmark and the Exact
// evaluator option to measure what the binning approximation costs.
func Exact1D(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return 0
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	return Exact1DSorted(a, b)
}

// Exact1DSorted is Exact1D for already-sorted samples; it does not copy.
func Exact1DSorted(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	stepA := 1 / float64(len(a))
	stepB := 1 / float64(len(b))
	var (
		i, j   int
		cdfA   float64
		cdfB   float64
		prev   float64
		total  float64
		inited bool
	)
	for i < len(a) || j < len(b) {
		var x float64
		switch {
		case j >= len(b) || (i < len(a) && a[i] <= b[j]):
			x = a[i]
		default:
			x = b[j]
		}
		if inited {
			total += abs(cdfA-cdfB) * (x - prev)
		}
		for i < len(a) && a[i] == x {
			cdfA += stepA
			i++
		}
		for j < len(b) && b[j] == x {
			cdfB += stepB
			j++
		}
		prev = x
		inited = true
	}
	return total
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
