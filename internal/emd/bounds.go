package emd

import (
	"errors"
	"math"
)

// This file provides provable lower and upper bounds on the closed-form
// 1-D EMD (PMFDistance). The pruning cascade in internal/core skips exact
// evaluations whose bound interval cannot affect an argmax decision; these
// functions are the cascade's tiers, ordered by cost:
//
//	mean  ≤  KS  ≤  thresholded-flow  ≤  exact EMD  ≤  L1-derived cap
//
// Writing C_i = Σ_{j≤i}(p_j − q_j) for the cumulative PMF gap and n for
// the compared bin count, the exact EMD is unit·Σ_i|C_i| and the bounds
// follow from elementary inequalities on that sum:
//
//   - mean (centroid) lower bound: |Σ_i C_i| ≤ Σ_i |C_i|. The left side is
//     the absolute difference of the distributions' means measured in bin
//     units — computable in O(1) per pair from per-histogram moments.
//   - Kolmogorov–Smirnov lower bound: max_i |C_i| ≤ Σ_i |C_i|.
//   - L1 upper bound: for PMFs of equal total mass, every prefix gap
//     satisfies |C_i| = |Σ_{j≤i}(p_j−q_j)| = |Σ_{j>i}(p_j−q_j)| ≤ L1(p,q)/2,
//     and C_{n−1} = 0, so Σ_i |C_i| ≤ (n−1)·L1(p,q)/2. The cap is tight:
//     two point masses at opposite ends have L1 = 2 and EMD = unit·(n−1).
//   - thresholded flow (Pele–Werman): the thresholded ground distance
//     min(|i−j|·unit, t) never exceeds the linear one, so the optimal
//     thresholded transport cost T_t is a lower bound; conversely any unit
//     of mass whose thresholded cost was clamped at t moves at linear cost
//     at most (n−1)·unit, and the total mass moved is at most TV(p,q), so
//     EMD ≤ T_t + ((n−1)·unit − t)·TV(p,q).
//
// All inequalities above are exact in real arithmetic. Computed in floats
// they can be violated by rounding on the order of a few ULPs, so every
// bound is padded by boundSlack — a guard that is provably larger than the
// accumulated rounding error yet orders of magnitude below any distance
// the engine discriminates on. Property tests (bounds_test.go) assert
// containment with NO tolerance: the slack is part of the contract.

// ErrNonFinite is returned by the bound functions when an input PMF
// contains NaN or ±Inf. Bounds on garbage would silently mis-prune, so
// non-finite inputs are rejected up front.
var ErrNonFinite = errors.New("emd: non-finite PMF value")

// boundSlack returns the float-rounding guard folded into every bound for
// n compared bins. Each C_i is a sum of ≤ 2n terms bounded by 1, so its
// rounding error is ≤ 2n·ε with ε = 2⁻⁵²; summing n of them and scaling
// by unit keeps the total error below unit·2n²·ε ≈ unit·n²·4.5e-16. The
// guard uses 1e-12·n·unit — over three orders of magnitude of headroom
// for any bin count the engine uses, and still ~9 orders of magnitude
// below a typical Table 2 pair distance.
func boundSlack(n int, unit float64) float64 {
	return 1e-12 * float64(n) * math.Abs(unit)
}

// checkFinitePMFs validates both inputs, returning the compared length
// (PMFDistance's min-length convention).
func checkFinitePMFs(p, q []float64) (int, error) {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(p[i]) || math.IsInf(p[i], 0) || math.IsNaN(q[i]) || math.IsInf(q[i], 0) {
			return 0, ErrNonFinite
		}
	}
	return n, nil
}

// KSLowerBound returns a guaranteed lower bound on PMFDistance(p, q, unit):
// the Kolmogorov–Smirnov statistic (max cumulative gap) scaled by unit,
// deflated by the rounding guard and clamped at 0.
func KSLowerBound(p, q []float64, unit float64) (float64, error) {
	n, err := checkFinitePMFs(p, q)
	if err != nil {
		return 0, err
	}
	lo := KolmogorovSmirnov(p[:n], q[:n])*unit - boundSlack(n, unit)
	if lo < 0 {
		lo = 0
	}
	return lo, nil
}

// MeanLowerBound returns a guaranteed lower bound on PMFDistance: the
// absolute mean difference |Σ_i C_i|·unit (the cheapest tier — one
// subtraction per pair once per-histogram first moments are cached),
// deflated by the rounding guard and clamped at 0.
func MeanLowerBound(p, q []float64, unit float64) (float64, error) {
	n, err := checkFinitePMFs(p, q)
	if err != nil {
		return 0, err
	}
	cum, sum := 0.0, 0.0
	for i := 0; i < n; i++ {
		cum += p[i] - q[i]
		sum += cum
	}
	lo := math.Abs(sum)*unit - boundSlack(n, unit)
	if lo < 0 {
		lo = 0
	}
	return lo, nil
}

// L1UpperBound returns a guaranteed upper bound on PMFDistance:
// unit·(n−1)·L1(p,q)/2, inflated by the rounding guard. The (n−1) factor
// requires equal total mass (see the derivation above); inputs whose
// totals differ by more than 1e-9 are rejected rather than silently
// under-bounded.
func L1UpperBound(p, q []float64, unit float64) (float64, error) {
	n, err := checkFinitePMFs(p, q)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	sp, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		sp += p[i]
		sq += q[i]
	}
	if math.Abs(sp-sq) > 1e-9 {
		return 0, errors.New("emd: L1 upper bound requires equal total mass")
	}
	// The mass-difference tolerance admits |C_{n-1}| ≤ 1e-9, which the
	// n−1 factor does not cover; fold it into the guard.
	return L1(p[:n], q[:n])/2*float64(n-1)*unit + 1e-9*math.Abs(unit) + boundSlack(n, unit), nil
}

// PivotBounds converts two distances to a shared pivot histogram into an
// interval for the pair's own distance via the metric triangle inequality:
// |rp − rq| ≤ d(p,q) ≤ rp + rq. slack pads both ends against the rounding
// already accumulated in rp and rq (pass boundSlack-scale values; the
// engine derives it from the bin count of the reps being compared). The
// 1-D EMD is a true metric on PMFs, so the inequality is exact in real
// arithmetic.
func PivotBounds(rp, rq, slack float64) (lo, hi float64) {
	lo = math.Abs(rp-rq) - slack
	if lo < 0 {
		lo = 0
	}
	return lo, rp + rq + slack
}

// ThresholdedBounds brackets PMFDistance(p, q, unit) using the
// Pele–Werman thresholded transport: the optimal cost T_t under ground
// distance min(|i−j|·unit, t) satisfies
//
//	T_t ≤ EMD ≤ T_t + ((n−1)·unit − t)·TV(p, q)
//
// (clamped mass moves at linear cost at most (n−1)·unit instead of t, and
// total transported mass is at most the total-variation distance). The
// solver quantizes mass to 1e-9 of the total, so its result carries a
// relative error up to ~2e-9 of the maximum ground cost; the guard here is
// scaled accordingly and is therefore much wider than boundSlack.
// Threshold t must be positive; t ≥ (n−1)·unit degenerates to [EMD, EMD].
func ThresholdedBounds(p, q []float64, unit, t float64) (lo, hi float64, err error) {
	n, err := checkFinitePMFs(p, q)
	if err != nil {
		return 0, 0, err
	}
	if n == 0 {
		return 0, 0, nil
	}
	if t <= 0 || math.IsNaN(t) {
		return 0, 0, errors.New("emd: threshold must be positive")
	}
	maxCost := float64(n-1) * unit
	tt, err := Transport(p[:n], q[:n], ThresholdedCost(n, n, unit, t))
	if err != nil {
		return 0, 0, err
	}
	guard := 1e-8*(maxCost+math.Abs(t)) + boundSlack(n, unit)
	lo = tt - guard
	if lo < 0 {
		lo = 0
	}
	hi = tt + guard
	if t < maxCost {
		hi += (maxCost - t) * (L1(p[:n], q[:n]) / 2)
	}
	return lo, hi, nil
}

// Bounds returns the tightest cheap interval the cascade offers without
// solving a flow: lower = max(mean, KS) tier, upper = L1 cap. The exact
// PMFDistance always lies within [lo, hi].
func Bounds(p, q []float64, unit float64) (lo, hi float64, err error) {
	ks, err := KSLowerBound(p, q, unit)
	if err != nil {
		return 0, 0, err
	}
	mean, err := MeanLowerBound(p, q, unit)
	if err != nil {
		return 0, 0, err
	}
	if mean > ks {
		ks = mean
	}
	hi, err = L1UpperBound(p, q, unit)
	if err != nil {
		return 0, 0, err
	}
	return ks, hi, nil
}
