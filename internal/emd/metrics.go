package emd

import (
	"fmt"
	"math"

	"fairrank/internal/histogram"
)

// Metric identifies a histogram distance. The paper uses EMD and names the
// search for alternative metrics as future work; fairrank ships the common
// candidates so that unfairness can be quantified under any of them.
type Metric int

const (
	// MetricEMD is the Earth Mover's Distance (the paper's choice).
	MetricEMD Metric = iota
	// MetricL1 is the total absolute difference between PMFs (twice the
	// total variation distance).
	MetricL1
	// MetricTV is the total variation distance, L1/2.
	MetricTV
	// MetricChiSquare is the symmetric chi-square distance.
	MetricChiSquare
	// MetricJS is the Jensen-Shannon divergence (base 2, in [0,1]).
	MetricJS
	// MetricKS is the Kolmogorov-Smirnov statistic (max CDF gap).
	MetricKS
	// MetricHellinger is the Hellinger distance, in [0,1].
	MetricHellinger
)

// String returns the metric's canonical name.
func (m Metric) String() string {
	switch m {
	case MetricEMD:
		return "emd"
	case MetricL1:
		return "l1"
	case MetricTV:
		return "tv"
	case MetricChiSquare:
		return "chi2"
	case MetricJS:
		return "js"
	case MetricKS:
		return "ks"
	case MetricHellinger:
		return "hellinger"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// ParseMetric resolves a metric name as printed by String.
func ParseMetric(name string) (Metric, error) {
	switch name {
	case "emd":
		return MetricEMD, nil
	case "l1":
		return MetricL1, nil
	case "tv":
		return MetricTV, nil
	case "chi2":
		return MetricChiSquare, nil
	case "js":
		return MetricJS, nil
	case "ks":
		return MetricKS, nil
	case "hellinger":
		return MetricHellinger, nil
	default:
		return 0, fmt.Errorf("emd: unknown metric %q", name)
	}
}

// Compare computes the chosen distance between two compatible histograms.
// For MetricEMD the GroundScore ground distance is used.
func Compare(a, b *histogram.Histogram, m Metric) (float64, error) {
	if a == nil || b == nil || !a.Compatible(b) {
		return 0, ErrIncompatible
	}
	p, q := a.PMF(), b.PMF()
	switch m {
	case MetricEMD:
		return PMFDistance(p, q, a.BinWidth()), nil
	case MetricL1:
		return L1(p, q), nil
	case MetricTV:
		return L1(p, q) / 2, nil
	case MetricChiSquare:
		return ChiSquare(p, q), nil
	case MetricJS:
		return JensenShannon(p, q), nil
	case MetricKS:
		return KolmogorovSmirnov(p, q), nil
	case MetricHellinger:
		return Hellinger(p, q), nil
	default:
		return 0, fmt.Errorf("emd: unknown metric %v", m)
	}
}

// L1 returns the sum of absolute PMF differences.
func L1(p, q []float64) float64 {
	s := 0.0
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s
}

// ChiSquare returns the symmetric chi-square distance
// Σ (p_i - q_i)² / (p_i + q_i), with empty joint bins contributing 0.
func ChiSquare(p, q []float64) float64 {
	s := 0.0
	for i := range p {
		d := p[i] + q[i]
		if d == 0 {
			continue
		}
		diff := p[i] - q[i]
		s += diff * diff / d
	}
	return s
}

// JensenShannon returns the Jensen-Shannon divergence in bits; it is
// symmetric, bounded by 1, and 0 iff p == q.
func JensenShannon(p, q []float64) float64 {
	kl := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			if a[i] == 0 {
				continue
			}
			s += a[i] * math.Log2(a[i]/b[i])
		}
		return s
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = (p[i] + q[i]) / 2
	}
	return (kl(p, m) + kl(q, m)) / 2
}

// KolmogorovSmirnov returns the maximum absolute difference between the two
// distributions' CDFs.
func KolmogorovSmirnov(p, q []float64) float64 {
	cum, best := 0.0, 0.0
	for i := range p {
		cum += p[i] - q[i]
		if a := math.Abs(cum); a > best {
			best = a
		}
	}
	return best
}

// Hellinger returns the Hellinger distance sqrt(1 - Σ sqrt(p_i q_i)),
// clamped to [0,1] against floating-point drift.
func Hellinger(p, q []float64) float64 {
	bc := 0.0
	for i := range p {
		bc += math.Sqrt(p[i] * q[i])
	}
	v := 1 - bc
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}
