package emd

import (
	"math"
	"testing"
	"testing/quick"

	"fairrank/internal/histogram"
	"fairrank/internal/rng"
)

func TestExact1DIdentical(t *testing.T) {
	xs := []float64{0.1, 0.5, 0.9}
	if d := Exact1D(xs, xs); d != 0 {
		t.Fatalf("EMD(x,x) = %v", d)
	}
}

func TestExact1DPointMasses(t *testing.T) {
	// Single points: EMD is just the distance between them.
	if d := Exact1D([]float64{0.2}, []float64{0.7}); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("EMD = %v, want 0.5", d)
	}
}

func TestExact1DMeanShift(t *testing.T) {
	// Shifting a sample by c moves the EMD by exactly c.
	xs := []float64{0.1, 0.2, 0.3, 0.4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x + 0.25
	}
	if d := Exact1D(xs, ys); math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("EMD = %v, want 0.25", d)
	}
}

func TestExact1DEmpty(t *testing.T) {
	if d := Exact1D(nil, []float64{1}); d != 0 {
		t.Fatalf("empty EMD = %v", d)
	}
}

func TestExact1DUnequalSizes(t *testing.T) {
	// {0} vs {0,1}: CDFs are 1 vs 0.5 on [0,1) → EMD = 0.5.
	if d := Exact1D([]float64{0}, []float64{0, 1}); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("EMD = %v, want 0.5", d)
	}
}

func TestExact1DDoesNotMutate(t *testing.T) {
	xs := []float64{0.9, 0.1}
	Exact1D(xs, []float64{0.5})
	if xs[0] != 0.9 {
		t.Fatal("input mutated")
	}
}

// Property: symmetric, non-negative, triangle inequality.
func TestExact1DMetricProperty(t *testing.T) {
	gen := func(r *rng.RNG) []float64 {
		n := 1 + r.Intn(40)
		out := make([]float64, n)
		for i := range out {
			out[i] = r.Float64()
		}
		return out
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		x, y, z := gen(r), gen(r), gen(r)
		dxy := Exact1D(x, y)
		dyx := Exact1D(y, x)
		dxz := Exact1D(x, z)
		dzy := Exact1D(z, y)
		return dxy >= 0 && math.Abs(dxy-dyx) < 1e-12 && dxy <= dxz+dzy+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the binned EMD converges to the exact EMD as bins increase.
func TestBinnedConvergesToExact(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 400)
	ys := make([]float64, 400)
	for i := range xs {
		xs[i] = r.Float64() * r.Float64() // skewed
		ys[i] = r.Float64()
	}
	exact := Exact1D(xs, ys)
	prevGap := math.Inf(1)
	for _, bins := range []int{5, 20, 100, 1000} {
		ha := histogram.MustNew(bins, 0, 1)
		hb := histogram.MustNew(bins, 0, 1)
		ha.AddAll(xs)
		hb.AddAll(ys)
		d, err := Distance(ha, hb)
		if err != nil {
			t.Fatal(err)
		}
		gap := math.Abs(d - exact)
		if gap > prevGap+0.01 {
			t.Fatalf("binned EMD diverging at %d bins: gap %v (prev %v)", bins, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 0.005 {
		t.Fatalf("1000-bin EMD still %v from exact", prevGap)
	}
}
