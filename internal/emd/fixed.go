package emd

import (
	"math"
	"slices"
)

// Fixed-point integer-quantized CDF kernels. The pruning cascade needs a
// bound on the *average* pairwise EMD of hundreds-to-thousands of PMFs
// that is (a) much cheaper than the O(k²·bins) exact triangle and (b) a
// provable interval, not an estimate. Quantizing each CDF once onto an
// integer grid of FixedScale steps makes the inner loop pure int64
// arithmetic — no allocation, no float rounding to reason about — and the
// quantization error has a closed-form worst case (FixedEpsilon) that is
// folded into the returned interval, so pruning on it stays exact.
//
// Quantization error. With Q = scale, q_i = round(Q·F_i) satisfies
// |q_i/Q − F_i| ≤ 1/(2Q) + δ, where δ covers the float rounding inside
// the cumulative sum F (≤ bins·2⁻⁵² per entry, far below 1e-12). For a
// pair the per-bin CDF-gap error is at most twice that, so
//
//	|unit/Q·Σ_b|q_p[b]−q_q[b]|  −  EMD(p,q)|  ≤  unit·bins·(1/Q + 1e-12)
//
// which is FixedEpsilon(bins, unit, scale). Averaging over pairs cannot
// amplify a per-pair worst case, so the same ε brackets the average; the
// interval additionally carries a float-reduction margin (see
// FixedAvgInterval) because the engine's exact average is itself a float
// sum in a different association order.

// FixedScale is the default quantization grid: CDF values are represented
// in units of 2⁻³⁰, giving ε ≈ unit·bins·9.3e-10 per pair — roughly seven
// orders of magnitude below the distances Table 2 workloads discriminate
// on — while keeping k²·scale pairwise sums far from int64 overflow for
// any partition count the engine can reach (safe to k ≈ 10⁵ parts).
const FixedScale int64 = 1 << 30

// FixedCDF quantizes PMF p's CDF onto an integer grid: out[i] =
// round(scale·Σ_{j≤i} p_j). ok is false (out nil) if p contains a
// non-finite value or scale < 1. Degenerate shapes — empty, zero-mass,
// or unnormalized PMFs — quantize fine; the kernel's bounds only require
// that all compared rows were quantized with the same scale.
func FixedCDF(p []float64, scale int64) (out []int64, ok bool) {
	if scale < 1 {
		return nil, false
	}
	out = make([]int64, len(p))
	cum := 0.0
	for i, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, false
		}
		cum += v
		out[i] = int64(math.RoundToEven(cum * float64(scale)))
	}
	return out, true
}

// DequantizeCDF converts a quantized CDF back to floats, out[i] =
// q[i]/scale. Round-tripping a finite PMF through FixedCDF and
// DequantizeCDF reproduces each cumulative value within 1/(2·scale) +
// 1e-12 — the property the FuzzFixedQuant target pins.
func DequantizeCDF(q []int64, scale int64) []float64 {
	out := make([]float64, len(q))
	s := float64(scale)
	for i, v := range q {
		out[i] = float64(v) / s
	}
	return out
}

// FixedEpsilon is the documented worst-case absolute error of a
// fixed-point pair distance (FixedDistance vs PMFDistance) for PMFs over
// the given bin count: unit·bins·(1/scale + 1e-12). The 1e-12 term covers
// float rounding inside the CDF accumulation with >10³ headroom for any
// realistic bin count.
func FixedEpsilon(bins int, unit float64, scale int64) float64 {
	return math.Abs(unit) * float64(bins) * (1/float64(scale) + 1e-12)
}

// FixedDistance computes the quantized closed-form EMD between two
// quantized CDFs (min-length convention, matching PMFDistance): it is
// within FixedEpsilon of the exact PMFDistance of the PMFs the rows were
// quantized from.
func FixedDistance(a, b []int64, unit float64, scale int64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var total int64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		total += d
	}
	return float64(total) * unit / float64(scale)
}

// FixedPairwiseSum computes Σ_{i<j} Σ_b |rows[i][b] − rows[j][b]| over all
// unordered row pairs in O(bins·k·log k) instead of the naive O(bins·k²):
// for each bin the column is sorted ascending and the classic order-
// statistics identity Σ_{i<j}(x_(j) − x_(i)) = Σ_j x_(j)·(2j − k + 1)
// collapses the pairwise sum to one weighted pass. Rows shorter than the
// first row truncate the compared bin range (engine rows are always
// equal-length). scratch is reused when it has capacity ≥ k, and the
// possibly-grown slice is returned so steady-state calls are
// allocation-free.
//
// Overflow: each per-bin accumulator is bounded by k²/2·scale < 2⁶³ for
// k·√scale < 2³², i.e. k ≤ ~1.3·10⁵ at FixedScale — orders of magnitude
// beyond any partition count the engine produces. Cross-bin accumulation
// is in float64; its relative rounding (≤ bins·2⁻⁵³) is absorbed by the
// 1e-12 slack in FixedEpsilon.
func FixedPairwiseSum(rows [][]int64, scratch []int64) (sum float64, scratchOut []int64) {
	k := len(rows)
	if k < 2 {
		return 0, scratch
	}
	bins := len(rows[0])
	for _, r := range rows {
		if len(r) < bins {
			bins = len(r)
		}
	}
	if cap(scratch) < k {
		scratch = make([]int64, k)
	}
	col := scratch[:k]
	for b := 0; b < bins; b++ {
		for i, r := range rows {
			col[i] = r[b]
		}
		slices.Sort(col)
		var binSum int64
		for j, x := range col {
			binSum += x * int64(2*j-k+1)
		}
		sum += float64(binSum)
	}
	return sum, col
}

// FixedAvgInterval brackets the exact average pairwise EMD of the PMFs the
// rows were quantized from: the true average (and the engine's float
// computation of it) lies in [lo, hi]. The half-width is
//
//	FixedEpsilon(bins, unit, scale) + (2.5e-16·n + 1e-12)·(1 + |est|)
//
// with n = k·(k−1)/2 the pair count — the per-pair quantization worst
// case (averaging cannot exceed the per-pair maximum) plus a reduction
// margin covering the engine's own serial float summation of the n pair
// distances in canonical order: a serial sum of n terms carries relative
// error below n·u with u = 2⁻⁵³ ≈ 1.11e-16, padded to 2.5e-16·n to also
// absorb the division, the kernel's cross-bin float accumulation, and
// double-rounding headroom. Scaling the margin by the pair count keeps it
// valid for the largest engine scans (10⁷ pairs → margin ≈ 2.5e-9·est)
// without bloating the interval for small ones. Fewer than two rows
// bracket the engine's zero-pairs convention exactly.
func FixedAvgInterval(rows [][]int64, unit float64, scale int64, scratch []int64) (lo, hi float64, scratchOut []int64) {
	k := len(rows)
	if k < 2 {
		return 0, 0, scratch
	}
	sum, scratch := FixedPairwiseSum(rows, scratch)
	pairs := float64(k) * float64(k-1) / 2
	est := sum * unit / float64(scale) / pairs
	eps := FixedEpsilon(len(rows[0]), unit, scale) + (2.5e-16*pairs+1e-12)*(1+math.Abs(est))
	lo = est - eps
	if lo < 0 {
		lo = 0
	}
	return lo, est + eps, scratch
}
