package emd

import (
	"math"
	"testing"

	"fairrank/internal/testkit"
)

// Differential tests: every EMD entry point in this package against the
// testkit oracles. These complement the fixed-fixture tests in emd_test.go
// with generated inputs and the shared metamorphic suite.

func TestPMFDistanceMetamorphic(t *testing.T) {
	testkit.CheckEMDProperties(t, "PMFDistance", PMFDistance, 300)
}

// Transport under the linear ground cost must reproduce the closed form.
// Tolerance is loose (1e-6) because Transport quantizes mass to 1e-9 units.
func TestTransportMatchesClosedForm(t *testing.T) {
	for seed := uint64(1); seed <= 120; seed++ {
		g := testkit.NewGen(seed)
		bins := g.R.IntRange(1, 25)
		p, q := g.PMF(bins), g.PMF(bins)
		unit := g.R.FloatRange(0.05, 2)
		got, err := Transport(p, q, LinearCost(bins, bins, unit))
		if err != nil {
			t.Fatalf("seed %d: Transport: %v", seed, err)
		}
		want := PMFDistance(p, q, unit)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("seed %d: Transport = %v, closed form = %v (bins=%d)", seed, got, want, bins)
		}
	}
}

// Exact1D (CDF sweep) against the oracle's explicit monotone coupling.
func TestExact1DMatchesWpFlow(t *testing.T) {
	var o testkit.Oracle
	for seed := uint64(1); seed <= 300; seed++ {
		g := testkit.NewGen(seed)
		xs := g.Scores(g.R.IntRange(1, 40))
		ys := g.Scores(g.R.IntRange(1, 40))
		got := Exact1D(xs, ys)
		want := o.WpFlow(xs, ys, 1)
		if math.Abs(got-want) > testkit.Tol {
			t.Fatalf("seed %d: Exact1D = %v, flow oracle = %v (|xs|=%d |ys|=%d)",
				seed, got, want, len(xs), len(ys))
		}
	}
}

// ExactWp's quantile-grid sweep against the oracle's mass-pointer flow, for
// p = 1 (where it must also equal Exact1D) and p = 2.
func TestExactWpMatchesWpFlow(t *testing.T) {
	var o testkit.Oracle
	for seed := uint64(1); seed <= 300; seed++ {
		g := testkit.NewGen(seed)
		xs := g.Scores(g.R.IntRange(1, 30))
		ys := g.Scores(g.R.IntRange(1, 30))
		for _, p := range []float64{1, 2} {
			got, err := ExactWp(xs, ys, p)
			if err != nil {
				t.Fatalf("seed %d: ExactWp(p=%v): %v", seed, p, err)
			}
			want := o.WpFlow(xs, ys, p)
			if math.Abs(got-want) > testkit.Tol {
				t.Fatalf("seed %d: ExactWp(p=%v) = %v, flow oracle = %v", seed, p, got, want)
			}
		}
		w1, _ := ExactWp(xs, ys, 1)
		if ex := Exact1D(xs, ys); math.Abs(w1-ex) > testkit.Tol {
			t.Fatalf("seed %d: ExactWp(p=1) = %v, Exact1D = %v", seed, w1, ex)
		}
	}
}

// Edge cases surfaced by the bugfix sweep, pinned so they stay fixed.

func TestExactWpRejectsNonFinite(t *testing.T) {
	bad := [][2][]float64{
		{{math.NaN()}, {0.5}},
		{{0.5}, {math.NaN(), 0.2}},
		{{math.Inf(1)}, {0.5}},
		{{0.1, math.Inf(-1)}, {0.5}},
	}
	for i, pair := range bad {
		if _, err := ExactWp(pair[0], pair[1], 1); err == nil {
			t.Errorf("case %d: ExactWp accepted non-finite sample %v vs %v", i, pair[0], pair[1])
		}
	}
	// Finite inputs must still pass.
	if _, err := ExactWp([]float64{0.1, 0.9}, []float64{0.5}, 2); err != nil {
		t.Fatalf("finite samples rejected: %v", err)
	}
}

func TestPMFDistanceSingleBin(t *testing.T) {
	// One bin: no ground distance to cover, so any two PMFs are at 0.
	if d := PMFDistance([]float64{1}, []float64{1}, 0.5); d != 0 {
		t.Fatalf("single-bin distance = %v, want 0", d)
	}
}

func TestPMFDistanceEmpty(t *testing.T) {
	// Zero-length PMFs truncate to an empty sum.
	if d := PMFDistance(nil, nil, 1); d != 0 {
		t.Fatalf("empty distance = %v, want 0", d)
	}
	if d := PMFDistance([]float64{1}, nil, 1); d != 0 {
		t.Fatalf("mismatched empty distance = %v, want 0", d)
	}
}
