package emd

import (
	"errors"
	"math"
	"testing"

	"fairrank/internal/testkit"
)

// The bound contract is containment with NO tolerance: the guard slack is
// baked into each bound, so lo ≤ exact ≤ hi must hold as plain float
// comparisons. Every property test here asserts exactly that, against both
// the closed form and the independent flow oracle.

func TestBoundsContainExactProperty(t *testing.T) {
	var o testkit.Oracle
	for seed := uint64(0); seed < 300; seed++ {
		g := testkit.NewGen(seed)
		bins := g.R.IntRange(1, 40)
		unit := g.R.Float64() + 0.01
		p, q := g.PMF(bins), g.PMF(bins)
		exact := PMFDistance(p, q, unit)
		flow := o.EMDFlow(p, q, unit)

		lo, hi, err := Bounds(p, q, unit)
		if err != nil {
			t.Fatalf("seed %d: Bounds: %v", seed, err)
		}
		if lo > exact || exact > hi {
			t.Fatalf("seed %d: exact %v outside [%v, %v] (bins=%d unit=%v)", seed, exact, lo, hi, bins, unit)
		}
		if lo > flow || flow > hi {
			t.Fatalf("seed %d: flow oracle %v outside [%v, %v]", seed, flow, lo, hi)
		}

		ks, err := KSLowerBound(p, q, unit)
		if err != nil {
			t.Fatalf("seed %d: KSLowerBound: %v", seed, err)
		}
		if ks > exact {
			t.Fatalf("seed %d: KS lower bound %v exceeds exact %v", seed, ks, exact)
		}
		mean, err := MeanLowerBound(p, q, unit)
		if err != nil {
			t.Fatalf("seed %d: MeanLowerBound: %v", seed, err)
		}
		if mean > exact {
			t.Fatalf("seed %d: mean lower bound %v exceeds exact %v", seed, mean, exact)
		}
		up, err := L1UpperBound(p, q, unit)
		if err != nil {
			t.Fatalf("seed %d: L1UpperBound: %v", seed, err)
		}
		if up < exact {
			t.Fatalf("seed %d: L1 upper bound %v below exact %v", seed, up, exact)
		}
	}
}

func TestBoundsIdenticalPMFs(t *testing.T) {
	g := testkit.NewGen(7)
	p := g.PMF(16)
	lo, hi, err := Bounds(p, p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 {
		t.Fatalf("identical PMFs: lower bound %v, want 0", lo)
	}
	if hi < 0 {
		t.Fatalf("identical PMFs: negative upper bound %v", hi)
	}
}

func TestThresholdedBoundsContainExact(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		g := testkit.NewGen(seed)
		bins := g.R.IntRange(2, 16)
		unit := g.R.Float64() + 0.01
		p, q := g.PMF(bins), g.PMF(bins)
		exact := PMFDistance(p, q, unit)
		for _, t0 := range []float64{unit / 2, unit, 2 * unit, float64(bins-1) * unit} {
			lo, hi, err := ThresholdedBounds(p, q, unit, t0)
			if err != nil {
				t.Fatalf("seed %d t=%v: %v", seed, t0, err)
			}
			if lo > exact || exact > hi {
				t.Fatalf("seed %d t=%v: exact %v outside [%v, %v]", seed, t0, exact, lo, hi)
			}
		}
	}
}

func TestThresholdedBoundsTightenWithThreshold(t *testing.T) {
	// At t ≥ (n−1)·unit the thresholded cost degenerates to the exact EMD,
	// so the interval collapses to the solver's quantization guard.
	g := testkit.NewGen(11)
	bins, unit := 12, 0.25
	p, q := g.PMF(bins), g.PMF(bins)
	exact := PMFDistance(p, q, unit)
	lo, hi, err := ThresholdedBounds(p, q, unit, float64(bins)*unit)
	if err != nil {
		t.Fatal(err)
	}
	if hi-lo > 1e-6 {
		t.Fatalf("degenerate threshold interval [%v, %v] too wide", lo, hi)
	}
	if lo > exact || exact > hi {
		t.Fatalf("exact %v outside [%v, %v]", exact, lo, hi)
	}
}

func TestPivotBoundsContainExact(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		g := testkit.NewGen(1000 + seed)
		bins := g.R.IntRange(1, 24)
		unit := g.R.Float64() + 0.01
		p, q, pivot := g.PMF(bins), g.PMF(bins), g.PMF(bins)
		rp := PMFDistance(p, pivot, unit)
		rq := PMFDistance(q, pivot, unit)
		exact := PMFDistance(p, q, unit)
		lo, hi := PivotBounds(rp, rq, boundSlack(bins, unit))
		if lo > exact || exact > hi {
			t.Fatalf("seed %d: exact %v outside pivot interval [%v, %v]", seed, exact, lo, hi)
		}
	}
}

// Irregular-length PMFs follow PMFDistance's min-length convention: the
// lower bounds compare the common prefix, so containment must still hold;
// the L1 cap additionally requires equal mass over that prefix.
func TestBoundsIrregularLengths(t *testing.T) {
	g := testkit.NewGen(23)
	p := g.PMF(5)
	q := make([]float64, 9) // mass confined to the compared prefix
	copy(q, g.PMF(5))
	exact := PMFDistance(p, q, 0.2)
	lo, hi, err := Bounds(p, q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if lo > exact || exact > hi {
		t.Fatalf("irregular lengths: exact %v outside [%v, %v]", exact, lo, hi)
	}

	// Mass beyond the compared prefix is invisible to the min-length
	// convention, so the cap still holds.
	q[8] = 0.5
	if up, err := L1UpperBound(p, q, 0.2); err != nil || up < exact {
		t.Fatalf("trailing mass: up=%v err=%v, want ≥ %v", up, err, exact)
	}

	// Unequal mass *within* the compared prefix breaks the (n−1)/2 factor:
	// the cap must refuse rather than under-bound.
	for i := range p {
		q[i] /= 2
	}
	if _, err := L1UpperBound(p, q, 0.2); err == nil {
		t.Fatal("L1UpperBound accepted unequal prefix mass")
	}
}

func TestBoundsRejectNonFinite(t *testing.T) {
	good := []float64{0.5, 0.5}
	for _, bad := range [][]float64{
		{math.NaN(), 0.5},
		{math.Inf(1), 0},
		{0.5, math.Inf(-1)},
	} {
		for name, err := range map[string]error{
			"KSLowerBound":   func() error { _, e := KSLowerBound(bad, good, 1); return e }(),
			"MeanLowerBound": func() error { _, e := MeanLowerBound(good, bad, 1); return e }(),
			"L1UpperBound":   func() error { _, e := L1UpperBound(bad, good, 1); return e }(),
			"Bounds":         func() error { _, _, e := Bounds(good, bad, 1); return e }(),
			"Thresholded":    func() error { _, _, e := ThresholdedBounds(bad, good, 1, 0.5); return e }(),
		} {
			if !errors.Is(err, ErrNonFinite) {
				t.Fatalf("%s(%v): err = %v, want ErrNonFinite", name, bad, err)
			}
		}
	}
}

func TestThresholdedBoundsRejectsBadThreshold(t *testing.T) {
	p := []float64{0.5, 0.5}
	for _, bad := range []float64{0, -1, math.NaN()} {
		if _, _, err := ThresholdedBounds(p, p, 1, bad); err == nil {
			t.Fatalf("threshold %v accepted", bad)
		}
	}
}

func TestL1UpperBoundMassMismatch(t *testing.T) {
	if _, err := L1UpperBound([]float64{1, 0}, []float64{0.25, 0.25}, 1); err == nil {
		t.Fatal("unequal total mass accepted")
	}
}

func TestBoundsEmpty(t *testing.T) {
	lo, hi, err := Bounds(nil, nil, 1)
	if err != nil || lo != 0 || hi != 0 {
		t.Fatalf("empty PMFs: lo=%v hi=%v err=%v, want 0 0 nil", lo, hi, err)
	}
	if lo, hi, err := ThresholdedBounds(nil, nil, 1, 0.5); err != nil || lo != 0 || hi != 0 {
		t.Fatalf("empty thresholded: lo=%v hi=%v err=%v", lo, hi, err)
	}
}
