package emd_test

import (
	"fmt"

	"fairrank/internal/emd"
	"fairrank/internal/histogram"
)

// Two score distributions concentrated 0.8 apart have EMD 0.8 — the value
// Table 3 of the paper reports for the gender-discriminating function f6.
func ExampleDistance() {
	male := histogram.MustNew(10, 0, 1)
	female := histogram.MustNew(10, 0, 1)
	male.AddAll([]float64{0.85, 0.95, 0.9})
	female.AddAll([]float64{0.05, 0.15, 0.1})
	d, _ := emd.Distance(male, female)
	fmt.Printf("%.1f\n", d)
	// Output: 0.8
}

func ExamplePMFDistance() {
	p := []float64{1, 0, 0} // all mass in bin 0
	q := []float64{0, 0, 1} // all mass in bin 2
	fmt.Println(emd.PMFDistance(p, q, 0.5))
	// Output: 1
}

func ExampleExact1D() {
	// A constant shift of 0.25 moves the exact EMD by exactly 0.25.
	xs := []float64{0.1, 0.2, 0.3}
	ys := []float64{0.35, 0.45, 0.55}
	fmt.Printf("%.2f\n", emd.Exact1D(xs, ys))
	// Output: 0.25
}

func ExampleTransport() {
	// Move mass [1, 0] to [0, 1] at unit cost per bin step.
	cost := emd.LinearCost(2, 2, 1)
	d, _ := emd.Transport([]float64{1, 0}, []float64{0, 1}, cost)
	fmt.Printf("%.0f\n", d)
	// Output: 1
}
