package emd

import (
	"math"
	"testing"

	"fairrank/internal/histogram"
	"fairrank/internal/rng"
)

func irr(t *testing.T, edges []float64, vals ...float64) *histogram.Irregular {
	t.Helper()
	h, err := histogram.NewIrregular(edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		h.Add(v)
	}
	return h
}

func TestIrregularDistanceIdentical(t *testing.T) {
	a := irr(t, []float64{0, 0.5, 1}, 0.25, 0.75)
	b := irr(t, []float64{0, 0.5, 1}, 0.25, 0.75)
	d, err := IrregularDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d) > 1e-9 {
		t.Fatalf("identical irregular EMD = %v", d)
	}
}

func TestIrregularDistanceKnownShift(t *testing.T) {
	// All mass at center 0.25 vs all mass at center 0.75: EMD = 0.5.
	a := irr(t, []float64{0, 0.5, 1}, 0.25)
	b := irr(t, []float64{0, 0.5, 1}, 0.75)
	d, err := IrregularDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-6 {
		t.Fatalf("EMD = %v, want 0.5", d)
	}
}

func TestIrregularDistanceDifferentLayouts(t *testing.T) {
	// Same underlying distribution, different edges: distance small.
	r := rng.New(1)
	a := irr(t, []float64{0, 0.25, 0.5, 0.75, 1})
	b := irr(t, []float64{0, 0.1, 0.5, 0.9, 1})
	for i := 0; i < 20000; i++ {
		v := r.Float64()
		a.Add(v)
		b.Add(v)
	}
	d, err := IrregularDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.12 {
		t.Fatalf("same-data cross-layout EMD = %v, want small", d)
	}
}

func TestIrregularDistanceNil(t *testing.T) {
	a := irr(t, []float64{0, 1}, 0.5)
	if _, err := IrregularDistance(nil, a); err != ErrIncompatible {
		t.Fatalf("nil err = %v", err)
	}
	if _, err := IrregularDistance(a, nil); err != ErrIncompatible {
		t.Fatalf("nil err = %v", err)
	}
}

func TestIrregularDistanceSymmetric(t *testing.T) {
	r := rng.New(3)
	a := irr(t, []float64{0, 0.3, 1})
	b := irr(t, []float64{0, 0.6, 0.8, 1})
	for i := 0; i < 100; i++ {
		a.Add(r.Float64())
		b.Add(r.Float64())
	}
	ab, err := IrregularDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := IrregularDistance(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ab-ba) > 1e-9 {
		t.Fatalf("asymmetric: %v vs %v", ab, ba)
	}
}
