package testkit

import (
	"reflect"
	"testing"
)

// VariantRunner executes one named case with a boolean engine variant
// switched on or off, returning whatever observable outcome the caller
// wants compared — typically a digest struct of result values, traces and
// error text. Runners must rebuild all state per call so the two
// executions cannot share caches.
type VariantRunner func(name string, on bool) any

// CheckVariantEquivalence is the differential oracle for switches that
// promise bit-identical results (e.g. Config.Prune): every named case runs
// twice — variant off, then on — and the outcomes must be deeply equal.
// Digests should carry exact floats, not rounded summaries, so the check
// really is bit-level.
func CheckVariantEquivalence(t *testing.T, variant string, names []string, run VariantRunner) {
	t.Helper()
	for _, name := range names {
		base := run(name, false)
		got := run(name, true)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("%s: %s on/off diverged:\noff: %+v\non:  %+v", name, variant, base, got)
		}
	}
}
