package testkit

import (
	"fmt"
	"math"
)

// Fair re-ranking oracles: slow, obviously-correct counterparts of
// internal/rerank's FA*IR minimum-count tables and the Det* prefix
// interval constraints, written from the definitions with none of the
// engine's incremental tricks.

// BinomialPMF is the literal binomial probability P(X = c) for X ~
// Bin(n, p), computed by multiplying the n factors of C(n,c)·p^c·(1-p)^
// (n-c) one at a time — no closed forms, no incremental reuse across
// prefix lengths.
func (Oracle) BinomialPMF(n, c int, p float64) float64 {
	if c < 0 || c > n {
		return 0
	}
	// Interleave the C(n,c) ratio factors with the probability powers so
	// intermediates stay near 1 even for large n.
	out := 1.0
	for i := 0; i < c; i++ {
		out *= float64(n-i) / float64(c-i) * p
	}
	for i := 0; i < n-c; i++ {
		out *= 1 - p
	}
	return out
}

// BinomialCDF is P(X <= m) for X ~ Bin(n, p), summing BinomialPMF terms.
func (o Oracle) BinomialCDF(m, n int, p float64) float64 {
	cdf := 0.0
	for c := 0; c <= m && c <= n; c++ {
		cdf += o.BinomialPMF(n, c, p)
	}
	return cdf
}

// FairTopKTable is the reference FA*IR minimum-count table: entry i
// (1-based; entry 0 is 0) is the smallest m with F(m; i, p) > alpha,
// found by scanning m upward from zero at every prefix length
// independently. This is rerank.MTable restated without the incremental
// distribution maintenance.
func (o Oracle) FairTopKTable(k int, p, alpha float64) []int {
	tbl := make([]int, k+1)
	for i := 1; i <= k; i++ {
		m := 0
		for m <= i && o.BinomialCDF(m, i, p) <= alpha {
			m++
		}
		tbl[i] = m
	}
	return tbl
}

// FairFailProb is the exhaustive family-wise rejection probability of a
// minimum-count table: it enumerates every Bernoulli(p) outcome sequence
// of length len(table)-1 (so keep k small — 2^k sequences) and sums the
// probability of those violating the table at any prefix. The reference
// for rerank.FailureProb's dynamic program.
func (Oracle) FairFailProb(p float64, table []int) float64 {
	k := len(table) - 1
	fail := 0.0
	for bits := 0; bits < 1<<k; bits++ {
		prob := 1.0
		count := 0
		violated := false
		for i := 1; i <= k; i++ {
			if bits>>(i-1)&1 == 1 {
				count++
				prob *= p
			} else {
				prob *= 1 - p
			}
			if count < table[i] {
				violated = true
			}
		}
		if violated {
			fail += prob
		}
	}
	return fail
}

// CheckPrefixIntervals brute-force checks the Det* feasibility contract:
// page is the re-ranked page as a sequence of group codes, poolCounts the
// per-group candidate counts of the pool it was drawn from. For every
// prefix length i and every group g, the number of g-members in the
// prefix must lie within [floor(p_g·i), ceil(p_g·i)] with p_g the pool
// share. Returns a descriptive error at the first violation.
func CheckPrefixIntervals(page []int, poolCounts []int) error {
	n := 0
	for _, c := range poolCounts {
		n += c
	}
	if n == 0 {
		return fmt.Errorf("testkit: empty pool")
	}
	counts := make([]int, len(poolCounts))
	for i, g := range page {
		if g < 0 || g >= len(poolCounts) {
			return fmt.Errorf("testkit: position %d has group %d outside the pool's %d groups", i+1, g, len(poolCounts))
		}
		counts[g]++
		for h, c := range counts {
			share := float64(poolCounts[h]) / float64(n)
			lo := int(math.Floor(share * float64(i+1) * (1 + 1e-12)))
			hi := int(math.Ceil(share * float64(i+1) * (1 - 1e-12)))
			if c < lo {
				return fmt.Errorf("testkit: prefix %d holds %d of group %d, floor(%v·%d) = %d",
					i+1, c, h, share, i+1, lo)
			}
			if c > hi {
				return fmt.Errorf("testkit: prefix %d holds %d of group %d, ceil(%v·%d) = %d",
					i+1, c, h, share, i+1, hi)
			}
		}
	}
	return nil
}

// CheckPrefixMinimums checks a page (as group codes) against per-group
// minimum-count tables: prefix i must hold at least tables[g][i] members
// of every group g with a table (nil tables are unconstrained). The
// FA*IR half of the prefix checks, shared by differential tests.
func CheckPrefixMinimums(page []int, tables [][]int) error {
	counts := make([]int, len(tables))
	for i, g := range page {
		if g < 0 || g >= len(tables) {
			return fmt.Errorf("testkit: position %d has group %d outside %d groups", i+1, g, len(tables))
		}
		counts[g]++
		for h, tbl := range tables {
			if tbl == nil {
				continue
			}
			if i+1 >= len(tbl) {
				return fmt.Errorf("testkit: table for group %d shorter than page", h)
			}
			if counts[h] < tbl[i+1] {
				return fmt.Errorf("testkit: prefix %d holds %d of group %d, table requires %d",
					i+1, counts[h], h, tbl[i+1])
			}
		}
	}
	return nil
}

// BestNDCGOrder exhaustively searches every permutation of the given
// relevance values (keep them few — n! orders) for the one maximizing
// discounted cumulative gain with the standard 1/log2(rank+1) discount,
// returning that maximum DCG. The reference against which "the
// score-sorted page is NDCG-optimal" is pinned.
func (Oracle) BestNDCGOrder(relevance []float64) float64 {
	n := len(relevance)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(-1)
	var walk func(i int)
	walk = func(i int) {
		if i == n {
			dcg := 0.0
			for pos, idx := range perm {
				dcg += relevance[idx] / math.Log2(float64(pos)+2)
			}
			if dcg > best {
				best = dcg
			}
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			walk(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	walk(0)
	return best
}
