package testkit

import (
	"math"
	"sort"
)

// Oracle bundles the slow reference implementations. The zero value is ready
// to use; methods are pure functions kept on a type so the differential
// tests read as engine-vs-oracle comparisons and so future oracles (e.g. a
// tolerance-carrying variant) can extend the same API.
type Oracle struct{}

// EMDFlow computes the 1-D EMD between two equal-length PMFs by building an
// explicit optimal flow: surplus bins ship mass to deficit bins under the
// monotone (leftmost-to-leftmost) coupling, which is optimal for any convex
// ground cost on the line. unit is the ground distance between adjacent
// bins. This is the brute-force counterpart of emd.PMFDistance's
// cumulative-sum closed form: same value, completely different derivation.
func (Oracle) EMDFlow(p, q []float64, unit float64) float64 {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	type lump struct {
		bin  int
		mass float64
	}
	var supply, demand []lump
	for i := 0; i < n; i++ {
		switch d := p[i] - q[i]; {
		case d > 0:
			supply = append(supply, lump{i, d})
		case d < 0:
			demand = append(demand, lump{i, -d})
		}
	}
	cost := 0.0
	si, di := 0, 0
	for si < len(supply) && di < len(demand) {
		m := supply[si].mass
		if demand[di].mass < m {
			m = demand[di].mass
		}
		cost += m * math.Abs(float64(supply[si].bin-demand[di].bin)) * unit
		supply[si].mass -= m
		demand[di].mass -= m
		if supply[si].mass <= 1e-15 {
			si++
		}
		if demand[di].mass <= 1e-15 {
			di++
		}
	}
	return cost
}

// AvgPairwise is the from-scratch average pairwise EMD over a set of PMFs:
// every unordered pair through EMDFlow, summed in (i, j) order. Fewer than
// two PMFs yield 0, matching the engine's convention.
func (o Oracle) AvgPairwise(pmfs [][]float64, unit float64) float64 {
	k := len(pmfs)
	if k < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			sum += o.EMDFlow(pmfs[i], pmfs[j], unit)
		}
	}
	return sum / float64(k*(k-1)/2)
}

// Counts is naive full-split histogramming over [min, max) with
// histogram.Histogram's exact clamping rules: NaN and below-range values
// land in bin 0, at-or-above-max values in the last bin. One branchy pass,
// no precomputed bin indices, no scatter tricks.
func (Oracle) Counts(values []float64, bins int, min, max float64) []float64 {
	counts := make([]float64, bins)
	width := (max - min) / float64(bins)
	for _, v := range values {
		var i int
		f := math.Floor((v - min) / width)
		switch {
		case math.IsNaN(v), f < 0: // NaN and below-range clamp low
			i = 0
		case f >= float64(bins): // at/above max (incl. +Inf) clamps high
			i = bins - 1
		default:
			i = int(f)
		}
		counts[i]++
	}
	return counts
}

// PMF normalizes a count row, returning the uniform distribution for an
// all-zero row — the same convention as histogram.Histogram.PMF, restated
// independently.
func (Oracle) PMF(counts []float64) []float64 {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(counts))
		}
		return out
	}
	for i, c := range counts {
		out[i] = c / total
	}
	return out
}

// Unfairness is the full reference pipeline for the paper's Definition 2 in
// binned GroundScore mode: histogram every part's scores over [0,1] with
// the given bin count, normalize, and average the pairwise flow EMDs with
// unit = 1/bins (the bin width). parts holds row indices into scores; it is
// the caller's problem to pass a disjoint cover when mirroring a
// Partitioning.
func (o Oracle) Unfairness(scores []float64, parts [][]int, bins int) float64 {
	pmfs := make([][]float64, len(parts))
	for i, part := range parts {
		vals := make([]float64, len(part))
		for k, row := range part {
			vals[k] = scores[row]
		}
		pmfs[i] = o.PMF(o.Counts(vals, bins, 0, 1))
	}
	return o.AvgPairwise(pmfs, 1/float64(bins))
}

// ExactUnfairness is Unfairness in bin-free Exact mode: each part is a
// uniform empirical distribution over its scores and pairs are compared
// with WpFlow at p = 1. Empty parts contribute distance 0 against
// everything, matching emd.Exact1D's empty-sample convention.
func (o Oracle) ExactUnfairness(scores []float64, parts [][]int) float64 {
	k := len(parts)
	if k < 2 {
		return 0
	}
	samples := make([][]float64, k)
	for i, part := range parts {
		s := make([]float64, len(part))
		for j, row := range part {
			s[j] = scores[row]
		}
		samples[i] = s
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			sum += o.WpFlow(samples[i], samples[j], 1)
		}
	}
	return sum / float64(k*(k-1)/2)
}

// WpFlow computes the exact p-Wasserstein distance between the empirical
// distributions of two samples by materializing the monotone coupling
// explicitly: both samples sorted, two mass pointers, each matched chunk
// contributing mass·|x−y|ᵖ. For p = 1 it is the flow-built counterpart of
// emd.Exact1D's CDF sweep; for general p it checks emd.ExactWp's
// quantile-grid evaluation. Either sample empty yields 0.
func (Oracle) WpFlow(xs, ys []float64, p float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return 0
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	stepA := 1 / float64(len(a))
	stepB := 1 / float64(len(b))
	var (
		i, j           int
		remainA        = stepA
		remainB        = stepB
		total  float64 = 0
	)
	for i < len(a) && j < len(b) {
		m := remainA
		if remainB < m {
			m = remainB
		}
		total += m * math.Pow(math.Abs(a[i]-b[j]), p)
		remainA -= m
		remainB -= m
		if remainA <= 1e-15 {
			i++
			remainA = stepA
		}
		if remainB <= 1e-15 {
			j++
			remainB = stepB
		}
	}
	return math.Pow(total, 1/p)
}

// SetPartitions enumerates every partition of {0, …, n-1} into non-empty
// blocks by recursive insertion: element i either joins an existing block or
// opens a new one. Each result is a list of blocks, each block a sorted list
// of elements, blocks ordered by smallest element — a canonical form
// differential tests can key on. The count is the Bell number of n, so keep
// n small (n ≤ 10 is ~115975 partitions).
func (Oracle) SetPartitions(n int) [][][]int {
	if n <= 0 {
		return nil
	}
	var out [][][]int
	var blocks [][]int
	var walk func(i int)
	walk = func(i int) {
		if i == n {
			cp := make([][]int, len(blocks))
			for b := range blocks {
				cp[b] = append([]int(nil), blocks[b]...)
			}
			out = append(out, cp)
			return
		}
		for b := range blocks {
			blocks[b] = append(blocks[b], i)
			walk(i + 1)
			blocks[b] = blocks[b][:len(blocks[b])-1]
		}
		blocks = append(blocks, []int{i})
		walk(i + 1)
		blocks = blocks[:len(blocks)-1]
	}
	walk(0)
	return out
}

// Bell returns the Bell number B(n) — the number of set partitions of n
// elements — via the Bell triangle. B(0) = 1.
func (Oracle) Bell(n int) int {
	if n <= 0 {
		return 1
	}
	row := []int{1}
	for i := 1; i <= n; i++ {
		next := make([]int, 0, i+1)
		next = append(next, row[len(row)-1])
		for _, v := range row {
			next = append(next, next[len(next)-1]+v)
		}
		row = next
	}
	return row[0]
}

// BlockKey renders a set-partition block list canonically ("0,2|1|3"), for
// comparing enumerations that emit partitions in different orders.
func BlockKey(blocks [][]int) string {
	type kb struct {
		min int
		s   string
	}
	items := make([]kb, len(blocks))
	for i, b := range blocks {
		sorted := append([]int(nil), b...)
		sort.Ints(sorted)
		s := ""
		for k, v := range sorted {
			if k > 0 {
				s += ","
			}
			s += itoa(v)
		}
		min := math.MaxInt
		if len(sorted) > 0 {
			min = sorted[0]
		}
		items[i] = kb{min, s}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].min < items[b].min })
	out := ""
	for i, it := range items {
		if i > 0 {
			out += "|"
		}
		out += it.s
	}
	return out
}

// itoa avoids strconv just for tiny non-negative block indices.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
