package testkit

import (
	"math"
	"testing"
)

// The fairness oracles are the root of trust for the re-ranking
// differential suite, so they get pinned to hand-computable cases and
// cross-checked against independent formulations before internal/rerank
// relies on them.

func TestBinomialPMFKnownValues(t *testing.T) {
	var o Oracle
	cases := []struct {
		n, c int
		p    float64
		want float64
	}{
		{2, 0, 0.5, 0.25},
		{2, 1, 0.5, 0.5},
		{2, 2, 0.5, 0.25},
		{4, 2, 0.5, 6.0 / 16},  // C(4,2)/2^4
		{3, 1, 0.25, 3 * 0.25 * 0.75 * 0.75},
		{5, 0, 0.2, math.Pow(0.8, 5)},
		{5, 5, 0.2, math.Pow(0.2, 5)},
		{3, -1, 0.5, 0},
		{3, 4, 0.5, 0},
		{0, 0, 0.7, 1}, // empty prefix: certainly zero successes
	}
	for i, c := range cases {
		if got := o.BinomialPMF(c.n, c.c, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: PMF(%d,%d,%v) = %v, want %v", i, c.n, c.c, c.p, got, c.want)
		}
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	var o Oracle
	for seed := uint64(1); seed <= 100; seed++ {
		g := NewGen(seed)
		n := g.R.IntRange(1, 60)
		p := g.R.FloatRange(0.01, 0.99)
		sum := 0.0
		for c := 0; c <= n; c++ {
			sum += o.BinomialPMF(n, c, p)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("seed %d: PMF over n=%d p=%v sums to %v", seed, n, p, sum)
		}
		if cdf := o.BinomialCDF(n, n, p); math.Abs(cdf-1) > 1e-9 {
			t.Fatalf("seed %d: full CDF = %v", seed, cdf)
		}
	}
}

// The FA*IR paper's running example: p = 0.5, alpha = 0.1, k = 10 yields
// the minimum-count table (0,0,0,1,1,1,2,2,3,3) — worked by hand from
// F(m; i, 0.5) > 0.1.
func TestFairTopKTablePaperExample(t *testing.T) {
	var o Oracle
	want := []int{0, 0, 0, 0, 1, 1, 1, 2, 2, 3, 3}
	got := o.FairTopKTable(10, 0.5, 0.1)
	if len(got) != len(want) {
		t.Fatalf("table length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %d, want %d (table %v)", i, got[i], want[i], got)
		}
	}
}

func TestFairTopKTableShape(t *testing.T) {
	var o Oracle
	for seed := uint64(1); seed <= 60; seed++ {
		g := NewGen(seed)
		k := g.R.IntRange(1, 25)
		p := g.R.FloatRange(0.05, 0.95)
		alpha := g.R.FloatRange(0.01, 0.3)
		tbl := o.FairTopKTable(k, p, alpha)
		if tbl[0] != 0 {
			t.Fatalf("seed %d: entry 0 = %d", seed, tbl[0])
		}
		for i := 1; i <= k; i++ {
			if tbl[i] < tbl[i-1] {
				t.Fatalf("seed %d: table not monotone at %d: %v", seed, i, tbl)
			}
			if tbl[i] > tbl[i-1]+1 {
				t.Fatalf("seed %d: table jumped by >1 at %d: %v", seed, i, tbl)
			}
			// Defining property: F(m) > alpha and F(m-1) <= alpha.
			if o.BinomialCDF(tbl[i], i, p) <= alpha {
				t.Fatalf("seed %d: F(%d;%d) <= alpha", seed, tbl[i], i)
			}
			if tbl[i] > 0 && o.BinomialCDF(tbl[i]-1, i, p) > alpha {
				t.Fatalf("seed %d: entry %d not minimal", seed, i)
			}
		}
	}
}

func TestFairFailProbEdges(t *testing.T) {
	var o Oracle
	// An all-zero table rejects nothing.
	if got := o.FairFailProb(0.3, []int{0, 0, 0, 0, 0}); got != 0 {
		t.Fatalf("all-zero table fail prob = %v", got)
	}
	// A table demanding every draw succeed fails unless all k do.
	k := 6
	tbl := make([]int, k+1)
	for i := 1; i <= k; i++ {
		tbl[i] = i
	}
	p := 0.7
	want := 1 - math.Pow(p, float64(k))
	if got := o.FairFailProb(p, tbl); math.Abs(got-want) > 1e-12 {
		t.Fatalf("all-success table fail prob = %v, want %v", got, want)
	}
	// A table constraining only the last prefix fails exactly when the
	// final count is short: 1 - F(m-1; k, p) reversed — fail = F(m-1).
	tbl = []int{0, 0, 0, 0, 2}
	want = o.BinomialCDF(1, 4, 0.5)
	if got := o.FairFailProb(0.5, tbl); math.Abs(got-want) > 1e-12 {
		t.Fatalf("final-only table fail prob = %v, want %v", got, want)
	}
}

func TestCheckPrefixIntervals(t *testing.T) {
	// A perfectly alternating page over a 50/50 pool is feasible.
	if err := CheckPrefixIntervals([]int{0, 1, 0, 1, 0, 1}, []int{3, 3}); err != nil {
		t.Fatalf("alternating page rejected: %v", err)
	}
	// Front-loading one group of a 50/50 pool violates the other's floor
	// (and the first group's ceiling) by prefix 2.
	if err := CheckPrefixIntervals([]int{0, 0, 1, 1}, []int{2, 2}); err == nil {
		t.Fatal("front-loaded page accepted")
	}
	// A single-group pool accepts any page of that group.
	if err := CheckPrefixIntervals([]int{0, 0, 0}, []int{3}); err != nil {
		t.Fatalf("single-group page rejected: %v", err)
	}
	// Out-of-range group codes are reported, not panicked on.
	if err := CheckPrefixIntervals([]int{2}, []int{1, 1}); err == nil {
		t.Fatal("out-of-range group accepted")
	}
	if err := CheckPrefixIntervals(nil, []int{}); err == nil {
		t.Fatal("empty pool accepted")
	}
	// Thirds: floor/ceil of i/3 tolerate one group running ahead by at
	// most one — 0,1,2,0,1,2 is fine, 0,1,0,0 overshoots group 0.
	if err := CheckPrefixIntervals([]int{0, 1, 2, 0, 1, 2}, []int{2, 2, 2}); err != nil {
		t.Fatalf("round-robin thirds rejected: %v", err)
	}
	if err := CheckPrefixIntervals([]int{0, 1, 0, 0}, []int{2, 2, 2}); err == nil {
		t.Fatal("group 0 overshoot accepted")
	}
}

func TestCheckPrefixMinimums(t *testing.T) {
	// Table demanding one group-1 member by prefix 2.
	tables := [][]int{nil, {0, 0, 1, 1}}
	if err := CheckPrefixMinimums([]int{0, 1, 0}, tables); err != nil {
		t.Fatalf("satisfying page rejected: %v", err)
	}
	if err := CheckPrefixMinimums([]int{0, 0, 1}, tables); err == nil {
		t.Fatal("late group-1 accepted")
	}
	if err := CheckPrefixMinimums([]int{3}, tables); err == nil {
		t.Fatal("out-of-range group accepted")
	}
	// A page longer than the table is a caller error, reported.
	if err := CheckPrefixMinimums([]int{0, 1, 0, 1}, tables); err == nil {
		t.Fatal("page longer than table accepted")
	}
}

func TestBestNDCGOrderIsSortedOrder(t *testing.T) {
	var o Oracle
	for seed := uint64(1); seed <= 40; seed++ {
		g := NewGen(seed)
		rel := g.Scores(g.R.IntRange(1, 7))
		best := o.BestNDCGOrder(rel)
		// Independent claim: descending sort maximizes DCG (rearrangement
		// inequality against the decreasing discount).
		sorted := append([]float64(nil), rel...)
		for i := range sorted { // insertion sort, descending
			for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		dcg := 0.0
		for pos, r := range sorted {
			dcg += r / math.Log2(float64(pos)+2)
		}
		if math.Abs(best-dcg) > 1e-12 {
			t.Fatalf("seed %d: exhaustive best %v != sorted DCG %v", seed, best, dcg)
		}
	}
}
