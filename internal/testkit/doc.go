// Package testkit is the differential-testing substrate for fairrank's
// optimized evaluation paths. Every fast path in the engine — the closed-form
// 1-D EMD, the incremental pairwise triangle, the single-pass scatter splits,
// the streaming monitor, the exhaustive enumerators — has a slow, obviously
// correct counterpart here, exported behind the stable Oracle API, plus
// deterministic input generators (Gen, seeded by internal/rng) and a
// metamorphic-property harness that each engine package imports from its own
// _test.go files.
//
// The package deliberately depends only on the leaf packages (dataset,
// partition, rng, scoring), never on the engines it checks, so any engine
// package can import it from internal tests without a cycle. Oracle
// implementations favor straight-line clarity over speed: an explicit
// monotone-coupling flow instead of the cumulative-sum closed form, a
// rebuild-everything average instead of the delta triangle, recursive block
// insertion instead of restricted-growth-string tricks. When an optimized
// path and its oracle disagree, the oracle is presumed right.
//
// Three layers build on each other:
//
//  1. Oracles — reference implementations differential tests compare against.
//  2. Generators — Gen derives schemas, datasets, partitionings, PMFs and
//     monitor event streams from a single uint64 seed, so every failure is
//     reproducible from one number and fuzz corpora stay tiny.
//  3. Metamorphic properties — CheckEMDProperties and CheckUnfairnessOracle
//     assert input-transformation invariants (permutation, refinement,
//     scaling, translation) that hold for any correct implementation,
//     catching bugs no fixed fixture would.
package testkit
