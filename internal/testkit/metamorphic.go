package testkit

import (
	"math"
	"testing"
)

// Tol is the default comparison tolerance for engine-vs-oracle values whose
// summation orders legitimately differ. Paths contracted to be bit-identical
// should compare with == instead.
const Tol = 1e-9

// DistFunc is a PMF distance parameterized by the ground distance between
// adjacent bins — the shape of emd.PMFDistance and of every oracle
// candidate for it.
type DistFunc func(p, q []float64, unit float64) float64

// CheckEMDProperties runs the metamorphic suite for a 1-D EMD implementation
// over `trials` generated PMF pairs (seeds 1..trials, so failures name their
// seed). The properties hold for any correct EMD regardless of algorithm:
//
//   - metric axioms: identity, symmetry, non-negativity, triangle inequality
//   - scale: doubling the ground unit doubles the distance
//   - translation: shifting both PMFs by the same number of zero bins is
//     distance-preserving
//   - bin refinement: interleaving r−1 zero bins between entries while
//     dividing the unit by r is distance-preserving (the refined histogram
//     places the same mass at the same ground positions)
//   - oracle agreement: the value matches the explicit-flow oracle within Tol
func CheckEMDProperties(t *testing.T, name string, dist DistFunc, trials int) {
	t.Helper()
	var o Oracle
	for seed := uint64(1); seed <= uint64(trials); seed++ {
		g := NewGen(seed)
		bins := g.R.IntRange(1, 40)
		p := g.PMF(bins)
		q := g.PMF(bins)
		r := g.PMF(bins)
		unit := g.R.FloatRange(0.01, 2)

		d := dist(p, q, unit)
		if d < 0 {
			t.Fatalf("%s seed %d: dist = %v, negative", name, seed, d)
		}
		if self := dist(p, p, unit); math.Abs(self) > Tol {
			t.Fatalf("%s seed %d: dist(p,p) = %v, want 0", name, seed, self)
		}
		if back := dist(q, p, unit); math.Abs(back-d) > Tol {
			t.Fatalf("%s seed %d: asymmetric: %v vs %v", name, seed, d, back)
		}
		if pr, pq, qr := dist(p, r, unit), d, dist(q, r, unit); pr > pq+qr+Tol {
			t.Fatalf("%s seed %d: triangle violated: d(p,r)=%v > d(p,q)+d(q,r)=%v", name, seed, pr, pq+qr)
		}
		if scaled := dist(p, q, 2*unit); math.Abs(scaled-2*d) > Tol {
			t.Fatalf("%s seed %d: unit doubled: %v, want %v", name, seed, scaled, 2*d)
		}
		shift := g.R.IntRange(1, 5)
		if shifted := dist(shiftPMF(p, shift), shiftPMF(q, shift), unit); math.Abs(shifted-d) > Tol {
			t.Fatalf("%s seed %d: translation by %d bins changed %v to %v", name, seed, shift, d, shifted)
		}
		refine := g.R.IntRange(2, 4)
		if ref := dist(refinePMF(p, refine), refinePMF(q, refine), unit/float64(refine)); math.Abs(ref-d) > Tol {
			t.Fatalf("%s seed %d: %d-refinement changed %v to %v", name, seed, refine, d, ref)
		}
		if want := o.EMDFlow(p, q, unit); math.Abs(d-want) > Tol {
			t.Fatalf("%s seed %d: dist = %v, flow oracle %v", name, seed, d, want)
		}
	}
}

// shiftPMF appends k zero bins before the PMF (and keeps total length
// len(p)+k so both arguments stay comparable).
func shiftPMF(p []float64, k int) []float64 {
	out := make([]float64, len(p)+k)
	copy(out[k:], p)
	return out
}

// refinePMF subdivides each bin into r sub-bins with all mass on the first,
// preserving every lump's ground position when the unit shrinks by r.
func refinePMF(p []float64, r int) []float64 {
	out := make([]float64, len(p)*r)
	for i, v := range p {
		out[i*r] = v
	}
	return out
}

// UnfairnessFunc evaluates Definition 2 over a score column and a list of
// row-index parts with the given histogram bin count — the shape the core
// engine, the repair package and the oracle all reduce to in binned
// GroundScore mode.
type UnfairnessFunc func(scores []float64, parts [][]int, bins int) float64

// CheckUnfairnessOracle runs the differential-plus-metamorphic suite for an
// average-pairwise-unfairness implementation over `trials` generated
// datasets: oracle agreement within Tol, invariance under part order
// permutation, invariance under within-part row shuffles, and the
// merge-then-split identity (splitting one part into two sub-parts and
// merging them back reproduces the original value).
func CheckUnfairnessOracle(t *testing.T, name string, fn UnfairnessFunc, trials int) {
	t.Helper()
	var o Oracle
	for seed := uint64(1); seed <= uint64(trials); seed++ {
		g := NewGen(seed)
		n := g.R.IntRange(2, 200)
		scores := g.Scores(n)
		bins := g.R.IntRange(1, 20)
		parts := RandomParts(g, n)

		got := fn(scores, parts, bins)
		want := o.Unfairness(scores, parts, bins)
		if math.Abs(got-want) > Tol {
			t.Fatalf("%s seed %d: unfairness = %v, oracle %v (n=%d k=%d bins=%d)",
				name, seed, got, want, n, len(parts), bins)
		}

		perm := g.R.Perm(len(parts))
		shuffled := make([][]int, len(parts))
		for i, pi := range perm {
			shuffled[i] = parts[pi]
		}
		if v := fn(scores, shuffled, bins); math.Abs(v-got) > Tol {
			t.Fatalf("%s seed %d: part order changed %v to %v", name, seed, got, v)
		}

		rowShuffled := make([][]int, len(parts))
		for i, part := range parts {
			cp := append([]int(nil), part...)
			g.R.Shuffle(len(cp), func(a, b int) { cp[a], cp[b] = cp[b], cp[a] })
			rowShuffled[i] = cp
		}
		if v := fn(scores, rowShuffled, bins); math.Abs(v-got) > Tol {
			t.Fatalf("%s seed %d: row order changed %v to %v", name, seed, got, v)
		}

		// Merge-then-split: cutting parts[0] in half and rejoining is the
		// identity on the part, so evaluating [first+second, rest...] must
		// reproduce the original value even when the halves were shuffled.
		if len(parts[0]) >= 2 {
			half := len(parts[0]) / 2
			rejoined := append(append([]int{}, parts[0][half:]...), parts[0][:half]...)
			merged := append([][]int{rejoined}, parts[1:]...)
			if v := fn(scores, merged, bins); math.Abs(v-got) > Tol {
				t.Fatalf("%s seed %d: merge-then-split changed %v to %v", name, seed, got, v)
			}
		}
	}
}

// RandomParts partitions rows 0..n-1 into 2–8 random non-empty groups, the
// bare-index-set shape the oracle consumes.
func RandomParts(g *Gen, n int) [][]int {
	k := g.R.IntRange(2, 8)
	if k > n {
		k = n
	}
	parts := make([][]int, k)
	// Guarantee non-empty parts, then scatter the rest.
	rows := g.R.Perm(n)
	for i := 0; i < k; i++ {
		parts[i] = append(parts[i], rows[i])
	}
	for _, row := range rows[k:] {
		x := g.R.Intn(k)
		parts[x] = append(parts[x], row)
	}
	return parts
}
