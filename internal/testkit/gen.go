package testkit

import (
	"fmt"
	"math"

	"fairrank/internal/dataset"
	"fairrank/internal/partition"
	"fairrank/internal/rng"
	"fairrank/internal/scoring"
)

// Gen derives arbitrary-but-reproducible test inputs from a single seed.
// Every method consumes from the same deterministic stream, so a failing
// (seed, size) pair replays exactly; sizes are explicit parameters so
// quickcheck-style callers can shrink by re-running with smaller sizes.
type Gen struct {
	R *rng.RNG
}

// NewGen returns a generator for the given seed.
func NewGen(seed uint64) *Gen { return &Gen{R: rng.New(seed)} }

// Schema generates a random worker schema: 1–4 protected attributes (mixed
// categorical and bucketized numeric, cardinality 2–4) plus a single
// observed "Score" attribute spanning [0,1] so ScoreFunc can read scores
// straight off the dataset.
func (g *Gen) Schema() *dataset.Schema {
	nAttrs := g.R.IntRange(1, 4)
	prot := make([]dataset.Attribute, nAttrs)
	for i := range prot {
		card := g.R.IntRange(2, 4)
		name := fmt.Sprintf("P%d", i)
		if g.R.Intn(2) == 0 {
			vals := make([]string, card)
			for v := range vals {
				vals[v] = fmt.Sprintf("v%d", v)
			}
			prot[i] = dataset.Cat(name, vals...)
		} else {
			prot[i] = dataset.Num(name, 0, 100, card)
		}
	}
	return &dataset.Schema{
		Protected: prot,
		Observed:  []dataset.Attribute{dataset.Num("Score", 0, 1, 1)},
	}
}

// Dataset populates schema with n random workers. Scores are uniform in
// [0,1); protected values are uniform over each attribute's domain.
func (g *Gen) Dataset(schema *dataset.Schema, n int) (*dataset.Dataset, error) {
	b := dataset.NewBuilder(schema)
	for i := 0; i < n; i++ {
		protVals := map[string]any{}
		for _, a := range schema.Protected {
			if a.Kind == dataset.Categorical {
				protVals[a.Name] = a.Values[g.R.Intn(len(a.Values))]
			} else {
				protVals[a.Name] = g.R.FloatRange(a.Min, a.Max)
			}
		}
		b.Add(fmt.Sprintf("w%d", i), protVals, map[string]any{"Score": g.R.Float64()})
	}
	return b.Build()
}

// WorkerDataset is Schema + Dataset in one call.
func (g *Gen) WorkerDataset(n int) (*dataset.Dataset, error) {
	return g.Dataset(g.Schema(), n)
}

// ScoreFunc returns the identity scoring function over the generated
// schemas' "Score" observed attribute.
func ScoreFunc() scoring.Func {
	return scoring.ScoreFunc{
		FuncName: "testkit-identity",
		Fn:       func(ds *dataset.Dataset, i int) float64 { return ds.Observed(0, i) },
	}
}

// Scores returns n uniform scores in [0,1).
func (g *Gen) Scores(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.R.Float64()
	}
	return out
}

// PMF returns a random probability mass function over the given bin count.
// Roughly a third of draws are sparse (most bins empty) and point masses
// occur, exercising the degenerate shapes that break naive distance code.
func (g *Gen) PMF(bins int) []float64 {
	out := make([]float64, bins)
	switch g.R.Intn(3) {
	case 0: // point mass
		out[g.R.Intn(bins)] = 1
		return out
	case 1: // sparse
		k := g.R.IntRange(1, 3)
		for i := 0; i < k; i++ {
			out[g.R.Intn(bins)] += g.R.Float64() + 1e-3
		}
	default: // dense
		for i := range out {
			out[i] = g.R.Float64()
		}
	}
	total := 0.0
	for _, v := range out {
		total += v
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// Partitioning returns a random hierarchical-split partitioning of ds: a
// random subset of attributes in random order, each partition independently
// either kept as a leaf or split further — exactly the space the paper's
// tree algorithms navigate, so every generated value is a valid full
// disjoint cover (callers may still Validate).
func (g *Gen) Partitioning(ds *dataset.Dataset) *partition.Partitioning {
	attrs := g.R.Perm(len(ds.Schema().Protected))
	attrs = attrs[:g.R.IntRange(1, len(attrs))]
	parts := []*partition.Partition{partition.Root(ds)}
	for _, a := range attrs {
		var next []*partition.Partition
		for _, p := range parts {
			if g.R.Intn(4) == 0 { // keep this branch as a leaf
				next = append(next, p)
				continue
			}
			next = append(next, partition.Split(ds, p, a)...)
		}
		parts = next
	}
	return &partition.Partitioning{Parts: parts}
}

// IndexParts returns the partitioning's parts as bare row-index slices, the
// shape the Oracle consumes.
func IndexParts(pt *partition.Partitioning) [][]int {
	out := make([][]int, len(pt.Parts))
	for i, p := range pt.Parts {
		out[i] = p.Indices
	}
	return out
}

// EventKind discriminates monitor stream events.
type EventKind int

const (
	// EventJoin adds a worker.
	EventJoin EventKind = iota
	// EventLeave removes a previously joined worker.
	EventLeave
	// EventRescore changes a previously joined worker's score.
	EventRescore
)

// Event is one worker lifecycle event for streaming-monitor tests. Group is
// an abstract group index; the consuming test maps it onto whatever
// protected-attribute encoding its monitor uses. Streams produced by Events
// are always valid: Leave and Rescore only ever reference live workers.
type Event struct {
	Kind  EventKind
	ID    string
	Group int
	Score float64
}

// Events generates a valid stream of n events over the given number of
// groups, biased toward joins so the population grows. The final live set
// can be reconstructed by replaying the stream.
func (g *Gen) Events(groups, n int) []Event {
	type live struct {
		id    string
		group int
	}
	var pool []live
	next := 0
	out := make([]Event, 0, n)
	for len(out) < n {
		op := g.R.Intn(4)
		if len(pool) == 0 {
			op = 0
		}
		switch op {
		case 0, 1: // join
			w := live{id: fmt.Sprintf("w%d", next), group: g.R.Intn(groups)}
			next++
			pool = append(pool, w)
			out = append(out, Event{Kind: EventJoin, ID: w.id, Group: w.group, Score: g.R.Float64()})
		case 2: // leave
			x := g.R.Intn(len(pool))
			w := pool[x]
			pool[x] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			out = append(out, Event{Kind: EventLeave, ID: w.id, Group: w.group})
		default: // rescore
			w := pool[g.R.Intn(len(pool))]
			out = append(out, Event{Kind: EventRescore, ID: w.id, Group: w.group, Score: g.R.Float64()})
		}
	}
	return out
}

// Joins generates a joins-only stream: n arrivals spread over the given
// group count. Joins targeting distinct workers commute, so any permutation
// of the stream must leave a correct monitor in an identical state — the
// commutativity half of the monitor's metamorphic suite.
func (g *Gen) Joins(groups, n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{Kind: EventJoin, ID: fmt.Sprintf("w%d", i), Group: g.R.Intn(groups), Score: g.R.Float64()}
	}
	return out
}

// FiniteFloats maps raw fuzz bytes onto a slice of finite floats in a
// fuzzer-friendly way: each byte becomes one value in [0, 1.275] (so values
// above histogram range occur), with a small number of exact 0 and 1
// endpoints. Shared by the fuzz targets so corpus entries stay portable
// byte strings.
func FiniteFloats(data []byte) []float64 {
	out := make([]float64, len(data))
	for i, b := range data {
		out[i] = float64(b) / 200 // [0, 1.275]
	}
	return out
}

// SpecialFloats maps raw fuzz bytes onto floats including the adversarial
// specials: bytes 250–255 decode to NaN, ±Inf, -1, 2, and exact 1;
// everything else lands in [0, 1.245]. Used by targets whose contract must
// hold for garbage inputs (histogram clamping, never-panic checks).
func SpecialFloats(data []byte) []float64 {
	out := make([]float64, len(data))
	for i, b := range data {
		switch b {
		case 255:
			out[i] = math.NaN()
		case 254:
			out[i] = math.Inf(1)
		case 253:
			out[i] = math.Inf(-1)
		case 252:
			out[i] = -1
		case 251:
			out[i] = 2
		case 250:
			out[i] = 1
		default:
			out[i] = float64(b) / 200
		}
	}
	return out
}
