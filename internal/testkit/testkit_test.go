package testkit

import (
	"math"
	"testing"
)

// The oracle is the root of trust for every differential test in the repo,
// so it gets pinned to hand-computable cases and cross-checked against its
// own independent formulations before anything else relies on it.

func TestEMDFlowKnownValues(t *testing.T) {
	var o Oracle
	cases := []struct {
		p, q []float64
		unit float64
		want float64
	}{
		{[]float64{1, 0}, []float64{0, 1}, 1, 1},            // one bin apart
		{[]float64{1, 0, 0}, []float64{0, 0, 1}, 0.5, 1},    // two bins × 0.5
		{[]float64{0.5, 0.5}, []float64{0.5, 0.5}, 3, 0},    // identical
		{[]float64{0.5, 0, 0.5}, []float64{0, 1, 0}, 1, 1},  // split to center
		{[]float64{0.25, 0.75}, []float64{0.75, 0.25}, 2, 1}, // 0.5 mass × 1 bin × 2
	}
	for i, c := range cases {
		if got := o.EMDFlow(c.p, c.q, c.unit); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: EMDFlow = %v, want %v", i, got, c.want)
		}
		if back := o.EMDFlow(c.q, c.p, c.unit); math.Abs(back-c.want) > 1e-12 {
			t.Errorf("case %d: EMDFlow reversed = %v, want %v", i, back, c.want)
		}
	}
}

// The flow construction must agree with the textbook cumulative-sum closed
// form; both are stated independently here so a bug in either shows up.
func TestEMDFlowMatchesClosedForm(t *testing.T) {
	var o Oracle
	for seed := uint64(1); seed <= 200; seed++ {
		g := NewGen(seed)
		bins := g.R.IntRange(1, 30)
		p, q := g.PMF(bins), g.PMF(bins)
		unit := g.R.FloatRange(0.05, 2)
		cum, closed := 0.0, 0.0
		for i := 0; i < bins; i++ {
			cum += p[i] - q[i]
			closed += math.Abs(cum)
		}
		closed *= unit
		if got := o.EMDFlow(p, q, unit); math.Abs(got-closed) > 1e-9 {
			t.Fatalf("seed %d: flow %v != closed form %v", seed, got, closed)
		}
	}
}

func TestWpFlowKnownValues(t *testing.T) {
	var o Oracle
	if got := o.WpFlow([]float64{0}, []float64{1}, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("point masses W1 = %v, want 1", got)
	}
	if got := o.WpFlow([]float64{0, 1}, []float64{0, 1}, 2); got > 1e-12 {
		t.Errorf("identical samples W2 = %v, want 0", got)
	}
	// {0,1} vs {0.5, 0.5}: monotone coupling moves each half-mass 0.5.
	if got := o.WpFlow([]float64{0, 1}, []float64{0.5, 0.5}, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("W1 = %v, want 0.5", got)
	}
	// Same pair under W2: (0.5·0.25 + 0.5·0.25)^(1/2) = 0.5.
	if got := o.WpFlow([]float64{0, 1}, []float64{0.5, 0.5}, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("W2 = %v, want 0.5", got)
	}
	if got := o.WpFlow(nil, []float64{1}, 1); got != 0 {
		t.Errorf("empty sample = %v, want 0", got)
	}
}

func TestCountsMatchesClamping(t *testing.T) {
	var o Oracle
	vals := []float64{-5, 0, 0.05, 0.95, 1, 7, math.NaN()}
	counts := o.Counts(vals, 10, 0, 1)
	// -5 → 0, 0 → 0, 0.05 → 0, NaN → 0; 0.95, 1, 7 → 9.
	if counts[0] != 4 || counts[9] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total != float64(len(vals)) {
		t.Fatalf("mass lost: %v of %d", total, len(vals))
	}
}

func TestPMFUniformWhenEmpty(t *testing.T) {
	var o Oracle
	pmf := o.PMF(make([]float64, 4))
	for _, v := range pmf {
		if v != 0.25 {
			t.Fatalf("empty-count PMF = %v, want uniform", pmf)
		}
	}
}

func TestSetPartitionsBellCounts(t *testing.T) {
	var o Oracle
	wantBell := []int{1, 1, 2, 5, 15, 52, 203, 877}
	for n, want := range wantBell {
		if got := o.Bell(n); got != want {
			t.Errorf("Bell(%d) = %d, want %d", n, got, want)
		}
		if n == 0 {
			continue
		}
		parts := o.SetPartitions(n)
		if len(parts) != want {
			t.Errorf("SetPartitions(%d) yields %d, want %d", n, len(parts), want)
		}
		seen := map[string]bool{}
		for _, blocks := range parts {
			total := 0
			for _, b := range blocks {
				total += len(b)
			}
			if total != n {
				t.Fatalf("partition %v covers %d of %d elements", blocks, total, n)
			}
			key := BlockKey(blocks)
			if seen[key] {
				t.Fatalf("duplicate partition %q", key)
			}
			seen[key] = true
		}
	}
}

func TestUnfairnessOracleTwoPointGroups(t *testing.T) {
	var o Oracle
	// Two groups at opposite histogram ends: EMD = 9 bins × 0.1 = 0.9,
	// matching the paper-calibrated example in internal/core's tests.
	scores := []float64{0.05, 0.95}
	got := o.Unfairness(scores, [][]int{{0}, {1}}, 10)
	if math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("unfairness = %v, want 0.9", got)
	}
	if v := o.ExactUnfairness(scores, [][]int{{0}, {1}}); math.Abs(v-0.9) > 1e-12 {
		t.Fatalf("exact unfairness = %v, want 0.9", v)
	}
}

func TestGenDeterminism(t *testing.T) {
	a, b := NewGen(42), NewGen(42)
	dsA, errA := a.WorkerDataset(50)
	dsB, errB := b.WorkerDataset(50)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if dsA.N() != dsB.N() {
		t.Fatalf("sizes differ: %d vs %d", dsA.N(), dsB.N())
	}
	for i := 0; i < dsA.N(); i++ {
		if dsA.Observed(0, i) != dsB.Observed(0, i) {
			t.Fatalf("row %d scores differ", i)
		}
	}
	ptA, ptB := a.Partitioning(dsA), b.Partitioning(dsB)
	if len(ptA.Parts) != len(ptB.Parts) {
		t.Fatalf("partitionings differ: %d vs %d parts", len(ptA.Parts), len(ptB.Parts))
	}
	if err := ptA.Validate(dsA); err != nil {
		t.Fatalf("generated partitioning invalid: %v", err)
	}
}

func TestEventsStreamValidity(t *testing.T) {
	g := NewGen(7)
	events := g.Events(4, 400)
	live := map[string]bool{}
	for i, ev := range events {
		switch ev.Kind {
		case EventJoin:
			if live[ev.ID] {
				t.Fatalf("event %d: duplicate join of %s", i, ev.ID)
			}
			live[ev.ID] = true
		case EventLeave:
			if !live[ev.ID] {
				t.Fatalf("event %d: leave of dead %s", i, ev.ID)
			}
			delete(live, ev.ID)
		case EventRescore:
			if !live[ev.ID] {
				t.Fatalf("event %d: rescore of dead %s", i, ev.ID)
			}
		}
		if ev.Group < 0 || ev.Group >= 4 {
			t.Fatalf("event %d: group %d out of range", i, ev.Group)
		}
	}
}

func TestSpecialFloatsDecoding(t *testing.T) {
	vals := SpecialFloats([]byte{0, 100, 250, 251, 252, 253, 254, 255})
	if vals[0] != 0 || vals[1] != 0.5 || vals[2] != 1 || vals[3] != 2 || vals[4] != -1 {
		t.Fatalf("plain decodes wrong: %v", vals)
	}
	if !math.IsInf(vals[5], -1) || !math.IsInf(vals[6], 1) || !math.IsNaN(vals[7]) {
		t.Fatalf("specials decode wrong: %v", vals)
	}
}
