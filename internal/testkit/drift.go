package testkit

import "math"

// DecayUnfairness is the literal-math oracle for the exponential-decay
// unfairness estimator in internal/drift: replay the whole event stream,
// give each live worker's newest observation the textbook weight
// 2^((t−T)/halfLife) — where t is the event index of its last join or
// rescore and T the stream length — bin the weighted mass per group, and
// average the pairwise EMDs over the normalized PMFs with EMDFlow. No
// incremental bookkeeping, no growing-scale trick, no rescaling: just the
// definition. Groups with no live workers do not participate, matching
// the estimator's convention.
func (o Oracle) DecayUnfairness(events []Event, groups, bins int, halfLife float64) float64 {
	type obs struct {
		group int
		score float64
		t     int
	}
	live := map[string]obs{}
	for t, ev := range events {
		switch ev.Kind {
		case EventJoin, EventRescore:
			live[ev.ID] = obs{group: ev.Group, score: ev.Score, t: t}
		case EventLeave:
			delete(live, ev.ID)
		}
	}
	mass := make([][]float64, groups)
	for i := range mass {
		mass[i] = make([]float64, bins)
	}
	T := len(events)
	for _, ob := range live {
		w := math.Exp2(float64(ob.t-T) / halfLife)
		mass[ob.group][binIndex(ob.score, bins)] += w
	}
	var pmfs [][]float64
	for _, row := range mass {
		total := 0.0
		for _, c := range row {
			total += c
		}
		if total == 0 {
			continue
		}
		pmf := make([]float64, bins)
		for i, c := range row {
			pmf[i] = c / total
		}
		pmfs = append(pmfs, pmf)
	}
	return o.AvgPairwise(pmfs, 1/float64(bins))
}

// binIndex restates histogram.Histogram's [0,1] bin clamping in place —
// the oracle cannot import the package (its differential tests import
// testkit), and an independent restatement is the point of an oracle
// anyway: NaN and below-range values go to bin 0, values at or above 1
// to the last bin.
func binIndex(v float64, bins int) int {
	if math.IsNaN(v) {
		return 0
	}
	f := math.Floor(v * float64(bins))
	if f < 0 {
		return 0
	}
	if f >= float64(bins) {
		return bins - 1
	}
	return int(f)
}
