package telemetry

import (
	"encoding/json"
	"expvar"
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // negative deltas ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total"); again != c {
		t.Fatal("re-registering the same series must return the same counter")
	}
}

func TestLabelsDistinguishSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", Label{"route", "/a"})
	b := r.Counter("hits", Label{"route", "/b"})
	if a == b {
		t.Fatal("different label values must be different series")
	}
	// Argument order must not matter.
	x := r.Counter("multi", Label{"k1", "v1"}, Label{"k2", "v2"})
	y := r.Counter("multi", Label{"k2", "v2"}, Label{"k1", "v1"})
	if x != y {
		t.Fatal("label order created duplicate series")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(1.5)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
	g.Add(-5)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.GaugeFunc("cache_entries", func() float64 { return v })
	snap := r.Snapshot()
	if got := snap.Gauges["cache_entries"]; got != 7 {
		t.Fatalf("gauge func = %v, want 7", got)
	}
	v = 9
	if got := r.Snapshot().Gauges["cache_entries"]; got != 9 {
		t.Fatalf("gauge func = %v, want live 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	snap := r.Snapshot().Histograms["lat"]
	// Buckets are <= bound, non-cumulative in the snapshot:
	// 0.05 and 0.1 -> le=0.1; 0.5 -> le=1; 5 -> le=10; 100 -> +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if got, want := snap.Sum, 0.05+0.1+0.5+5+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if ExpBuckets(0, 2, 4) != nil || ExpBuckets(1, 1, 4) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Fatal("degenerate ExpBuckets parameters must yield nil")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay 0")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay 0")
	}
	h := r.Histogram("z", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	r.GaugeFunc("f", func() float64 { return 1 })
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	r.PublishExpvar("nil-reg")
	if expvar.Get("nil-reg") != nil {
		t.Fatal("nil registry must not publish expvar")
	}
}

func TestKindMismatchIsDetached(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dual")
	g := r.Gauge("dual") // same series name, different kind
	g.Set(42)
	c.Inc()
	if got := r.Snapshot().Counters["dual"]; got != 1 {
		t.Fatalf("registered counter = %d, want 1 (mismatched gauge must be detached)", got)
	}
	if _, ok := r.Snapshot().Gauges["dual"]; ok {
		t.Fatal("mismatched-kind gauge must not enter the registry")
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_total")
			h := r.Histogram("conc_lat", []float64{1, 2})
			g := r.Gauge("conc_gauge")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1.5)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counters["conc_total"]; got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := snap.Histograms["conc_lat"].Count; got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := snap.Gauges["conc_gauge"]; got != workers*per {
		t.Fatalf("gauge = %v, want %d", got, workers*per)
	}
}

func TestSnapshotJSONAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b", Label{"x", "1"}).Set(2)
	r.Histogram("c", []float64{1}).Observe(0.5)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot must marshal: %v", err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("snapshot must round-trip: %v", err)
	}
	if decoded.Counters["a_total"] != 3 || decoded.Gauges[`b{x="1"}`] != 2 {
		t.Fatalf("round-trip lost values: %+v", decoded)
	}

	r.PublishExpvar("telemetry_test_reg")
	r.PublishExpvar("telemetry_test_reg") // duplicate publish must not panic
	v := expvar.Get("telemetry_test_reg")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var viaExpvar Snapshot
	if err := json.Unmarshal([]byte(v.String()), &viaExpvar); err != nil {
		t.Fatalf("expvar output is not snapshot JSON: %v", err)
	}
	if viaExpvar.Counters["a_total"] != 3 {
		t.Fatalf("expvar snapshot = %+v", viaExpvar)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 0.2, 0.4, 0.8})
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 100 observations: 50 in (≤0.1], 40 in (0.1,0.2], 9 in (0.2,0.4],
	// 1 beyond the last bound.
	for i := 0; i < 50; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 40; i++ {
		h.Observe(0.15)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.3)
	}
	h.Observe(5)
	cases := []struct {
		q, want float64
	}{
		{0, 0.1},    // clamped to the first observation's bucket
		{0.5, 0.1},  // 50th observation is still in the first bucket
		{0.51, 0.2}, // 51st spills into the second
		{0.9, 0.2},
		{0.99, 0.4},
		{1, math.Inf(1)}, // the max landed past the last bound
		{2, math.Inf(1)}, // clamped down to 1
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := h.Quantile(math.NaN()); got != 0.1 {
		t.Errorf("Quantile(NaN) = %v, want clamp to 0.1", got)
	}
	var nilH *Histogram
	if nilH.Quantile(0.99) != 0 {
		t.Fatal("nil histogram Quantile must be 0")
	}
}
