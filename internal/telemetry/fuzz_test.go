package telemetry

import (
	"math"
	"strings"
	"testing"
)

// FuzzPrometheus drives arbitrary metric names, label names, label
// values and sample values through every metric kind and asserts the
// exposition encoder (a) never panics and (b) always emits lexically
// valid Prometheus text format — the two properties a scrape endpoint
// must hold no matter what strings instrumentation code registers.
func FuzzPrometheus(f *testing.F) {
	f.Add("requests_total", "route", "/v1/rank", 1.5)
	f.Add("", "", "", 0.0)
	f.Add("9starts-with digit", "bad key", "va\"l\\ue\nnewline", -3.25)
	f.Add("utf8_ünïcode_名前", "läbel", "значение", math.MaxFloat64)
	f.Add("a:b:c", "le", "+Inf", math.SmallestNonzeroFloat64)
	f.Add("x_bucket", "quantile", "0.99", 1e-308)
	f.Add(strings.Repeat("n", 300), strings.Repeat("k", 300), strings.Repeat("v", 300), 42.0)
	f.Fuzz(func(t *testing.T, name, labelKey, labelVal string, value float64) {
		r := NewRegistry()
		lbl := Label{Key: labelKey, Value: labelVal}
		r.Counter(name, lbl).Add(int64(math.Abs(math.Mod(value, 1024))) + 1)
		r.Gauge(name+"_g", lbl).Set(value)
		r.GaugeFunc(name+"_gf", func() float64 { return value }, lbl)
		h := r.Histogram(name+"_h", []float64{value, value * 2, 1}, lbl)
		h.Observe(value)
		h.Observe(0.5)

		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if err := CheckExposition(b.String()); err != nil {
			t.Fatalf("invalid exposition: %v\ninputs: name=%q key=%q val=%q value=%v\noutput:\n%s",
				err, name, labelKey, labelVal, value, b.String())
		}
	})
}
