// Package telemetry is the platform's zero-dependency observability
// layer: a metrics registry (atomic counters, gauges and exponential-
// bucket histograms with Prometheus text exposition and expvar
// publication) plus lightweight span tracing propagated through
// context.Context.
//
// Everything is nil-safe by design: methods on a nil *Registry return
// nil metrics, and methods on nil *Counter, *Gauge, *Histogram and
// *Span are no-ops. Instrumented hot paths therefore cost a single
// predictable nil-check when telemetry is disabled, so the engine can
// be instrumented unconditionally.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, e.g. {Key: "route", Value: "/v1/rank"}.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing metric. The zero value is
// usable; a nil Counter ignores all operations.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is usable;
// a nil Gauge ignores all operations.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta (atomically, via CAS).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution with cumulative exposition.
// Buckets hold observations <= their upper bound; an implicit +Inf
// bucket catches the rest. The zero value is not usable — histograms
// come from Registry.Histogram. A nil Histogram ignores observations.
type Histogram struct {
	bounds []float64 // sorted upper bounds (exclusive of +Inf)
	counts []atomic.Int64
	inf    atomic.Int64
	count  atomic.Int64
	sum    Gauge // reuses the CAS float accumulator
}

// Observe records one sample. NaN observations are dropped (they would
// poison the sum and match no bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since start, in seconds — the
// conventional unit for latency histograms.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Quantile returns a conservative upper bound for the q-quantile of the
// observed distribution: the smallest bucket upper bound whose
// cumulative count reaches q of the total. This is what latency gates
// assert against ("p99 under budget"): the true quantile can only be
// lower than the bound, so a passing gate is trustworthy at bucket
// resolution. Returns 0 for an empty (or nil) histogram, +Inf when the
// quantile falls in the implicit +Inf bucket; q is clamped to [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	switch {
	case math.IsNaN(q) || q < 0:
		q = 0
	case q > 1:
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	need := int64(math.Ceil(q * float64(total)))
	if need < 1 {
		need = 1
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= need {
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// ExpBuckets returns n exponentially growing upper bounds starting at
// start (start, start·factor, start·factor², …): the standard layout
// for latency histograms spanning several orders of magnitude.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefBuckets are the default latency buckets: 100µs to ~52s in
// doublings, in seconds.
func DefBuckets() []float64 { return ExpBuckets(1e-4, 2, 20) }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one registered (name, labels) time series.
type series struct {
	name   string
	labels []Label // sorted by key
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds the process's metrics. The zero value is not usable —
// use NewRegistry — but a nil *Registry is: every method returns a nil
// metric whose operations no-op, which is how instrumented code runs
// with telemetry disabled.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: map[string]*series{}}
}

// seriesKey fingerprints (name, sorted labels) for get-or-create
// lookup. The \x00 separators cannot occur in a way that confuses two
// distinct label sets sharing a rendering.
func seriesKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels returns a sorted copy so callers' argument order never
// creates duplicate series.
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup returns the series under (name, labels) if present.
func (r *Registry) lookup(key string) (*series, bool) {
	r.mu.RLock()
	s, ok := r.series[key]
	r.mu.RUnlock()
	return s, ok
}

// register inserts a series, keeping the first registration on a race.
func (r *Registry) register(key string, s *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.series[key]; ok {
		return prev
	}
	r.series[key] = s
	return s
}

// Counter returns the counter registered under (name, labels),
// creating it on first use. A nil Registry returns a nil (no-op)
// Counter. If the series exists with a different kind, a detached
// counter is returned rather than corrupting the registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	if s, ok := r.lookup(key); ok {
		if s.kind == kindCounter {
			return s.counter
		}
		return &Counter{}
	}
	s := r.register(key, &series{name: name, labels: labels, kind: kindCounter, counter: &Counter{}})
	if s.kind != kindCounter {
		return &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge registered under (name, labels), creating it
// on first use. A nil Registry returns a nil (no-op) Gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	if s, ok := r.lookup(key); ok {
		if s.kind == kindGauge {
			return s.gauge
		}
		return &Gauge{}
	}
	s := r.register(key, &series{name: name, labels: labels, kind: kindGauge, gauge: &Gauge{}})
	if s.kind != kindGauge {
		return &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time — for values that already live elsewhere (cache sizes, queue
// depths) and should not be mirrored on the hot path. Re-registering
// the same series keeps the first function. No-op on a nil Registry.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	if _, ok := r.lookup(key); ok {
		return
	}
	r.register(key, &series{name: name, labels: labels, kind: kindGaugeFunc, gaugeFn: fn})
}

// Histogram returns the histogram registered under (name, labels),
// creating it with the given bucket upper bounds on first use (nil
// bounds select DefBuckets). Bounds are sorted and deduplicated; later
// calls reuse the first registration's buckets. A nil Registry returns
// a nil (no-op) Histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	if s, ok := r.lookup(key); ok {
		if s.kind == kindHistogram {
			return s.hist
		}
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets()
	}
	bs := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		// NaN bounds are meaningless and +Inf is the implicit final
		// bucket; both are dropped rather than exposed twice.
		if !math.IsNaN(b) && !math.IsInf(b, 1) {
			bs = append(bs, b)
		}
	}
	sort.Float64s(bs)
	bs = dedupFloats(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs))}
	s := r.register(key, &series{name: name, labels: labels, kind: kindHistogram, hist: h})
	if s.kind != kindHistogram {
		return nil
	}
	return s.hist
}

func dedupFloats(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// snapshotSeries copies the series list under the read lock, sorted by
// (name, labels) for deterministic exposition.
func (r *Registry) snapshotSeries() []*series {
	r.mu.RLock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return labelsID(out[i].labels) < labelsID(out[j].labels)
	})
	return out
}

func labelsID(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(1)
	}
	return b.String()
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per-bucket (non-cumulative); Counts[len(Bounds)] is +Inf
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every metric, keyed by the
// rendered series identity (name{k="v",…}). It is what tests assert
// against and what expvar publishes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. A nil Registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	for _, s := range r.snapshotSeries() {
		id := renderID(s.name, s.labels)
		switch s.kind {
		case kindCounter:
			snap.Counters[id] = s.counter.Value()
		case kindGauge:
			snap.Gauges[id] = s.gauge.Value()
		case kindGaugeFunc:
			snap.Gauges[id] = s.gaugeFn()
		case kindHistogram:
			h := s.hist
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.bounds)+1),
				Count:  h.count.Load(),
				Sum:    h.sum.Value(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			hs.Counts[len(h.bounds)] = h.inf.Load()
			snap.Histograms[id] = hs
		}
	}
	return snap
}

// renderID renders the human-readable series identity used as snapshot
// keys: name, plus {k="v",…} when labelled.
func renderID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
