package telemetry

import (
	"runtime"
	"runtime/debug"
)

// MetricBuildInfo is the constant build-identity gauge. Its value is
// always 1; the information lives in the labels — the Prometheus
// convention for version metadata, so a fleet dashboard can spot
// heterogeneous rollouts by grouping on the label set.
const MetricBuildInfo = "fairrank_build_info"

// RegisterBuildInfo registers the fairrank_build_info gauge on reg with
// version/commit/go labels resolved from the binary's embedded build
// info. Values degrade to "unknown" for binaries built without module
// or VCS metadata (e.g. plain `go test` harnesses). Safe to call more
// than once per registry — the series is deduplicated by name+labels.
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	version, commit := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				commit = s.Value
				if len(commit) > 12 {
					commit = commit[:12]
				}
			}
		}
	}
	reg.Gauge(MetricBuildInfo,
		Label{Key: "version", Value: version},
		Label{Key: "commit", Value: commit},
		Label{Key: "go", Value: runtime.Version()},
	).Set(1)
}
