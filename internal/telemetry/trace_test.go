package telemetry

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanTreeStructure(t *testing.T) {
	ctx, tracer := WithTracer(context.Background(), "run")
	sctx, scan := StartSpan(ctx, "scan")
	scan.SetInt("attrs", 6)
	_, probe := StartSpan(sctx, "probe")
	probe.SetStr("mode", "binned")
	probe.End()
	scan.End()
	_, second := StartSpan(ctx, "reduce")
	second.End()

	tree := tracer.Finish()
	if tree == nil || tree.Name != "run" {
		t.Fatalf("root = %+v", tree)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(tree.Children))
	}
	if tree.Children[0].Name != "scan" || tree.Children[1].Name != "reduce" {
		t.Fatalf("children = %q, %q", tree.Children[0].Name, tree.Children[1].Name)
	}
	sc := tree.Children[0]
	if got := sc.Attrs["attrs"]; got != int64(6) {
		t.Fatalf("scan attrs = %v (%T)", got, got)
	}
	if len(sc.Children) != 1 || sc.Children[0].Name != "probe" {
		t.Fatalf("scan children = %+v", sc.Children)
	}
	if got := sc.Children[0].Attrs["mode"]; got != "binned" {
		t.Fatalf("probe mode attr = %v", got)
	}
	if tree.DurUS < 0 || sc.DurUS < 0 || sc.StartUS < 0 {
		t.Fatalf("negative times: %+v", tree)
	}
}

func TestStartSpanWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "orphan")
	if sp != nil {
		t.Fatal("no tracer: span must be nil")
	}
	if ctx2 != ctx {
		t.Fatal("no tracer: context must be unchanged")
	}
	// All nil-span operations must be safe.
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.End()

	var nilCtx context.Context
	if _, sp := StartSpan(nilCtx, "x"); sp != nil {
		t.Fatal("nil context must yield nil span")
	}
	var nilTracer *Tracer
	if nilTracer.Finish() != nil {
		t.Fatal("nil tracer Finish must be nil")
	}
}

func TestConcurrentSiblingSpans(t *testing.T) {
	ctx, tracer := WithTracer(context.Background(), "scan")
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := StartSpan(ctx, "probe")
			sp.SetInt("attr", int64(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	tree := tracer.Finish()
	if len(tree.Children) != n {
		t.Fatalf("children = %d, want %d", len(tree.Children), n)
	}
	seen := map[int64]bool{}
	for _, c := range tree.Children {
		seen[c.Attrs["attr"].(int64)] = true
	}
	if len(seen) != n {
		t.Fatalf("lost attributes: %d distinct, want %d", len(seen), n)
	}
}

func TestUnfinishedSpanClampedToRoot(t *testing.T) {
	ctx, tracer := WithTracer(context.Background(), "run")
	_, sp := StartSpan(ctx, "leaky") // never ended
	_ = sp
	tree := tracer.Finish()
	if len(tree.Children) != 1 {
		t.Fatalf("children = %d", len(tree.Children))
	}
	c := tree.Children[0]
	if c.DurUS < 0 || c.StartUS+c.DurUS > tree.DurUS+1000 {
		t.Fatalf("unfinished span not clamped: root %+v child %+v", tree, c)
	}
}

func TestTracerJSONRoundTrip(t *testing.T) {
	ctx, tracer := WithTracer(context.Background(), "audit")
	_, sp := StartSpan(ctx, "scan")
	sp.SetInt("pairs", 10)
	sp.End()
	raw, err := tracer.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var tree SpanTree
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatalf("span JSON must round-trip: %v\n%s", err, raw)
	}
	if tree.Name != "audit" || len(tree.Children) != 1 || tree.Children[0].Name != "scan" {
		t.Fatalf("decoded tree = %+v", tree)
	}
	names := []string{}
	tree.Walk(func(s *SpanTree) { names = append(names, s.Name) })
	if len(names) != 2 || names[0] != "audit" || names[1] != "scan" {
		t.Fatalf("walk order = %v", names)
	}
}
