package telemetry

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramQuantileConcurrentWriters hammers Quantile from reader
// goroutines while writers Observe — the steal-latency histogram is
// read exactly this way by the bench harness while the cluster loop is
// still recording. Run under -race (make verify does); the assertions
// here also pin that a mid-write Quantile stays in the histogram's
// value domain instead of returning garbage from a torn read.
func TestHistogramQuantileConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	bounds := ExpBuckets(1e-3, 2, 12)
	h := r.Histogram("race_lat_seconds", bounds)
	const writers, readers, per = 4, 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Deterministic spread across the bucket range.
				h.Observe(1e-3 * float64(1+(seed*per+i)%4000))
			}
		}(w)
	}
	maxBound := bounds[len(bounds)-1]
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q := float64(i%101) / 100
				v := h.Quantile(q)
				if math.IsNaN(v) || v < 0 {
					t.Errorf("Quantile(%v) = %v mid-write", q, v)
					return
				}
				// Anything not past the last bound must be one of the
				// configured bounds; beyond it is +Inf.
				if !math.IsInf(v, 1) && v > maxBound {
					t.Errorf("Quantile(%v) = %v exceeds last bound %v", q, v, maxBound)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != writers*per {
		t.Fatalf("count = %d, want %d", got, writers*per)
	}
	// Quiesced: quantiles must be monotone in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile(prev) = %v", q, v, prev)
		}
		prev = v
	}
}
