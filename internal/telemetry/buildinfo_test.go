package telemetry

import (
	"strings"
	"testing"
)

func TestRegisterBuildInfo(t *testing.T) {
	RegisterBuildInfo(nil) // nil registry must be a no-op, not a panic

	r := NewRegistry()
	RegisterBuildInfo(r)
	snap := r.Snapshot()
	var series string
	for name := range snap.Gauges {
		if strings.HasPrefix(name, MetricBuildInfo) {
			series = name
			break
		}
	}
	if series == "" {
		t.Fatalf("no %s series in snapshot: %v", MetricBuildInfo, snap.Gauges)
	}
	if got := snap.Gauges[series]; got != 1 {
		t.Fatalf("%s = %v, want 1", series, got)
	}
	// The go runtime version label is always known, even in test binaries
	// where VCS stamping is absent.
	if !strings.Contains(series, `go="go`) {
		t.Fatalf("series %q missing go version label", series)
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), MetricBuildInfo) {
		t.Fatalf("prometheus export missing %s:\n%s", MetricBuildInfo, buf.String())
	}
}
