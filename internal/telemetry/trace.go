package telemetry

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// Span tracing: a Tracer owns a root span; StartSpan derives children
// through context.Context, so instrumented layers never pass spans
// explicitly and un-traced runs (no tracer in the context) pay one
// context lookup per span site and allocate nothing.
//
// Spans are safe for concurrent use: the engine's parallel attribute
// scan starts sibling spans from multiple goroutines under one parent.

// spanCtxKey carries the current *Span through a context chain.
type spanCtxKey struct{}

// Attr is one span attribute; exactly one of Int/Str is meaningful,
// selected by isStr.
type attr struct {
	key   string
	i     int64
	s     string
	isStr bool
}

// Span is one timed node of a trace tree. A nil *Span ignores every
// operation, which is what StartSpan returns when no tracer is
// installed.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []attr
	children []*Span
}

// Tracer collects one span tree, rooted at the span WithTracer created.
type Tracer struct {
	root *Span
}

// WithTracer installs a new tracer on the context, rooted at a span
// with the given name. Subsequent StartSpan calls on the derived
// context build the tree.
func WithTracer(ctx context.Context, rootName string) (context.Context, *Tracer) {
	root := &Span{name: rootName, start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, root), &Tracer{root: root}
}

// StartSpan begins a child of the context's current span, returning a
// derived context (for further nesting) and the span. When the context
// carries no tracer — or is nil — it returns the context unchanged and
// a nil span whose methods no-op: tracing disabled costs one context
// lookup and zero allocations.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, sp)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// End marks the span finished. Double-End keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetInt attaches an integer attribute (cardinalities, counts).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{key: key, i: v})
	s.mu.Unlock()
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{key: key, s: v, isStr: true})
	s.mu.Unlock()
}

// SpanTree is the exportable form of a span and its subtree. Times are
// microseconds: StartUS relative to the tracer root's start, DurUS the
// span's own duration.
type SpanTree struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"duration_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanTree    `json:"children,omitempty"`
}

// Finish ends the root span (if still open) and exports the whole tree.
// Unfinished descendants are clamped to the root's end so durations are
// never negative. Nil-safe.
func (t *Tracer) Finish() *SpanTree {
	if t == nil || t.root == nil {
		return nil
	}
	t.root.End()
	t.root.mu.Lock()
	rootEnd := t.root.end
	t.root.mu.Unlock()
	return export(t.root, t.root.start, rootEnd)
}

// JSON is Finish rendered as indented JSON.
func (t *Tracer) JSON() ([]byte, error) {
	return json.MarshalIndent(t.Finish(), "", "  ")
}

func export(s *Span, origin time.Time, fallbackEnd time.Time) *SpanTree {
	s.mu.Lock()
	end := s.end
	attrs := append([]attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if end.IsZero() || end.Before(s.start) {
		end = fallbackEnd
		if end.Before(s.start) {
			end = s.start
		}
	}
	node := &SpanTree{
		Name:    s.name,
		StartUS: s.start.Sub(origin).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
	}
	if len(attrs) > 0 {
		node.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			if a.isStr {
				node.Attrs[a.key] = a.s
			} else {
				node.Attrs[a.key] = a.i
			}
		}
	}
	for _, c := range children {
		node.Children = append(node.Children, export(c, origin, end))
	}
	return node
}

// Walk visits the tree depth-first, parents before children — the
// traversal tests and reporters use to assert phase coverage.
func (st *SpanTree) Walk(fn func(*SpanTree)) {
	if st == nil {
		return
	}
	fn(st)
	for _, c := range st.Children {
		c.Walk(fn)
	}
}
