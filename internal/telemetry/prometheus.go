package telemetry

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4): one `# TYPE` header per metric family followed by
// its samples, histograms expanded into cumulative _bucket/_sum/_count
// series. Arbitrary registered names and label values are sanitized and
// escaped so the output is always lexically valid exposition text — the
// encoder is fuzzed on that property.

// WritePrometheus renders every registered metric. A nil Registry
// writes nothing and returns nil.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, s := range r.snapshotSeries() {
		name := SanitizeMetricName(s.name)
		if name != lastFamily {
			bw.WriteString("# TYPE ")
			bw.WriteString(name)
			bw.WriteByte(' ')
			bw.WriteString(kindName(s.kind))
			bw.WriteByte('\n')
			lastFamily = name
		}
		switch s.kind {
		case kindCounter:
			writeSample(bw, name, s.labels, nil, formatFloat(float64(s.counter.Value())))
		case kindGauge:
			writeSample(bw, name, s.labels, nil, formatFloat(s.gauge.Value()))
		case kindGaugeFunc:
			writeSample(bw, name, s.labels, nil, formatFloat(s.gaugeFn()))
		case kindHistogram:
			writeHistogram(bw, name, s.labels, s.hist)
		}
	}
	return bw.Flush()
}

func kindName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// writeHistogram expands one histogram into the cumulative exposition
// series: name_bucket{le="…"} (including the mandatory +Inf bucket),
// name_sum and name_count.
func writeHistogram(w *bufio.Writer, name string, labels []Label, h *Histogram) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, name+"_bucket", labels, &Label{Key: "le", Value: formatFloat(b)}, strconv.FormatInt(cum, 10))
	}
	cum += h.inf.Load()
	writeSample(w, name+"_bucket", labels, &Label{Key: "le", Value: "+Inf"}, strconv.FormatInt(cum, 10))
	writeSample(w, name+"_sum", labels, nil, formatFloat(h.sum.Value()))
	writeSample(w, name+"_count", labels, nil, strconv.FormatInt(h.count.Load(), 10))
}

// writeSample renders one exposition line. extra, when non-nil, is an
// additional pre-sanitized label appended after the series labels (the
// histogram `le` bound).
func writeSample(w *bufio.Writer, name string, labels []Label, extra *Label, value string) {
	w.WriteString(name)
	if len(labels) > 0 || extra != nil {
		w.WriteByte('{')
		n := 0
		for _, l := range labels {
			if n > 0 {
				w.WriteByte(',')
			}
			w.WriteString(SanitizeLabelName(l.Key))
			w.WriteString(`="`)
			w.WriteString(EscapeLabelValue(l.Value))
			w.WriteByte('"')
			n++
		}
		if extra != nil {
			if n > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extra.Key)
			w.WriteString(`="`)
			w.WriteString(extra.Value)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// formatFloat renders a sample value or bucket bound the way Prometheus
// expects: shortest round-trip representation, with +Inf/-Inf/NaN
// spelled in exposition style.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SanitizeMetricName maps an arbitrary string onto the Prometheus
// metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*; invalid runes become
// '_' (bytewise, so multi-byte runes cannot smuggle invalid output) and
// an empty or digit-led result is prefixed with '_'.
func SanitizeMetricName(name string) string {
	return sanitize(name, true)
}

// SanitizeLabelName maps an arbitrary string onto the label-name
// alphabet [a-zA-Z_][a-zA-Z0-9_]* (no colons).
func SanitizeLabelName(name string) string {
	return sanitize(name, false)
}

func sanitize(name string, allowColon bool) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0) ||
			(allowColon && c == ':')
		if c >= '0' && c <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteByte(c)
			continue
		}
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// EscapeLabelValue escapes a label value for exposition: backslash,
// double quote and newline are the three characters the format
// requires escaping.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
