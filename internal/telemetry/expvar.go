package telemetry

import "expvar"

// PublishExpvar publishes the registry under the given name in the
// process's expvar namespace, rendering a full Snapshot on every read —
// so `GET /debug/vars` (or any expvar consumer) sees live values
// without a scrape loop. Publishing the same name twice, or publishing
// from a nil Registry, is a no-op: expvar.Publish panics on duplicates,
// and an observability layer must never take the process down.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || name == "" || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
