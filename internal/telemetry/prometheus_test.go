package telemetry

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestWritePrometheusBasic(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", Label{"route", "/a"}).Add(3)
	r.Gauge("depth").Set(2.5)
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{route="/a"} 3`,
		"# TYPE depth gauge",
		"depth 2.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and the sum correct.
	if !strings.Contains(out, "lat_seconds_sum 5.55") {
		t.Fatalf("missing histogram sum in:\n%s", out)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird name-총", Label{"bad key", "va\"l\\ue\nx"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `weird_name____{bad_key="va\"l\\ue\nx"} 1`) {
		t.Fatalf("escaping wrong:\n%s", out)
	}
	if err := CheckExposition(out); err != nil {
		t.Fatalf("escaped output not parseable: %v", err)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"ok_name:x":  "ok_name:x",
		"":           "_",
		"9leading":   "_9leading",
		"has space":  "has_space",
		"dash-dot.x": "dash_dot_x",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := SanitizeLabelName("a:b"); got != "a_b" {
		t.Errorf("label names must not keep colons, got %q", got)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		2.5:          "2.5",
		3:            "3",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if formatFloat(math.NaN()) != "NaN" {
		t.Error("NaN must render as NaN")
	}
}

// CheckExposition validates that every line of a rendered exposition is
// lexically valid Prometheus text format: either a comment or
// `name[{label="value",…}] value`. It is the oracle the fuzz target
// shares, so it lives in the package under test.
func CheckExposition(out string) error {
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return fmt.Errorf("line %d: %w (%q)", lineNo, err, line)
			}
			continue
		}
		if err := checkSample(line); err != nil {
			return fmt.Errorf("line %d: %w (%q)", lineNo, err, line)
		}
	}
	return sc.Err()
}

func checkComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) >= 4 && fields[1] == "TYPE" {
		if !validMetricName(fields[2]) {
			return fmt.Errorf("TYPE names invalid metric %q", fields[2])
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
			return nil
		}
		return fmt.Errorf("unknown TYPE %q", fields[3])
	}
	return nil // other comments are free-form
}

func checkSample(line string) error {
	rest := line
	i := 0
	for i < len(rest) && isNameChar(rest[i], i == 0, true) {
		i++
	}
	if i == 0 {
		return fmt.Errorf("missing metric name")
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := scanLabels(rest)
		if err != nil {
			return err
		}
		rest = rest[end:]
	}
	if !strings.HasPrefix(rest, " ") {
		return fmt.Errorf("missing space before value")
	}
	val := strings.TrimSpace(rest)
	if val == "+Inf" || val == "-Inf" || val == "NaN" {
		return nil
	}
	if _, err := strconv.ParseFloat(val, 64); err != nil {
		return fmt.Errorf("bad value %q", val)
	}
	return nil
}

// scanLabels validates a {k="v",…} block and returns its length.
func scanLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && isNameChar(s[i], i == start, false) {
			i++
		}
		if i == start {
			return 0, fmt.Errorf("empty label name at %d", i)
		}
		if i+1 >= len(s) || s[i] != '=' || s[i+1] != '"' {
			return 0, fmt.Errorf("label name not followed by =\"")
		}
		i += 2
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value")
			}
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape")
				}
				switch s[i+1] {
				case '\\', '"', 'n':
					i += 2
					continue
				}
				return 0, fmt.Errorf("invalid escape \\%c", s[i+1])
			}
			if s[i] == '"' {
				i++
				break
			}
			if s[i] == '\n' {
				return 0, fmt.Errorf("raw newline in label value")
			}
			i++
		}
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		if !isNameChar(name[i], i == 0, true) {
			return false
		}
	}
	return len(name) > 0
}

func isNameChar(c byte, first, allowColon bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	case c == ':':
		return allowColon
	}
	return false
}
