package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Report bundles a finished span tree with a metrics snapshot — the
// payload the CLIs' -telemetry-json flag emits.
type Report struct {
	Spans   *SpanTree `json:"spans,omitempty"`
	Metrics Snapshot  `json:"metrics"`
}

// WriteReport renders a Report as indented JSON. Both arguments are
// optional: a nil tracer omits the span tree, a nil registry yields an
// empty metrics snapshot.
func WriteReport(w io.Writer, tr *Tracer, reg *Registry) error {
	raw, err := json.MarshalIndent(Report{Spans: tr.Finish(), Metrics: reg.Snapshot()}, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}

// WriteReportFile writes a Report to the named file, or to stdout when
// path is "-".
func WriteReportFile(path string, tr *Tracer, reg *Registry) error {
	if path == "-" {
		return WriteReport(os.Stdout, tr, reg)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := WriteReport(f, tr, reg); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
