package cluster

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzClusterMessage drives every peer-protocol decoder with one input.
// The decoders must never panic, and anything they accept must satisfy
// the protocol bounds — the properties the strict decoding exists to
// enforce. Seed corpus lives in testdata/fuzz/FuzzClusterMessage;
// `make fuzz-smoke` runs this briefly on every CI pass.
func FuzzClusterMessage(f *testing.F) {
	seeds := []string{
		`{"node_id":"n1","epoch":3,"queued":2,"running":1,"claimed":0,"datasets":["demo"]}`,
		`{"thief":"n2","max":8,"datasets":["demo","other"]}`,
		`{"claims":[{"token":"t1","job_id":"job-1","spec_hash":"abc","spec":{"dataset":"demo","algorithm":"exact"}}]}`,
		`{"thief":"n2","tokens":["t1","t2"]}`,
		`{}`,
		`{"node_id":"n1"} trailing`,
		`{"node_id":"` + strings.Repeat("x", 200) + `"}`,
		`{"claims":[{"token":"t","job_id":"j","spec_hash":"h","spec":null}]}`,
		`[1,2,3]`,
		`"just a string"`,
		`{"thief":"n2","max":-5}`,
		`{"node_id":"n1","queued":-1}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := DecodePing(data); err == nil {
			if p.NodeID == "" || len(p.NodeID) > maxWireNodeID {
				t.Fatalf("accepted ping with bad node_id %q", p.NodeID)
			}
			if p.Queued < 0 || p.Running < 0 || p.Claimed < 0 {
				t.Fatalf("accepted ping with negative depth: %+v", p)
			}
			if len(p.Datasets) > maxWireDatasets {
				t.Fatalf("accepted ping with %d datasets", len(p.Datasets))
			}
		}
		if req, err := DecodeStealRequest(data); err == nil {
			if req.Thief == "" || req.Max < 1 || req.Max > maxWireBatch {
				t.Fatalf("accepted bad steal request: %+v", req)
			}
		}
		if resp, err := DecodeStealResponse(data); err == nil {
			if len(resp.Claims) > maxWireBatch {
				t.Fatalf("accepted %d claims", len(resp.Claims))
			}
			for _, c := range resp.Claims {
				if c.Token == "" || len(c.Spec) == 0 || len(c.Spec) > maxWireSpec {
					t.Fatalf("accepted bad claim: %+v", c)
				}
				// Raw specs must stay re-serializable as-is.
				if !json.Valid(c.Spec) {
					t.Fatalf("accepted claim with invalid raw spec: %s", c.Spec)
				}
			}
		}
		if ack, err := DecodeAckRequest(data); err == nil {
			if ack.Thief == "" || len(ack.Tokens) == 0 || len(ack.Tokens) > maxWireBatch {
				t.Fatalf("accepted bad ack: %+v", ack)
			}
		}
	})
}
