package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"fairrank/internal/telemetry"
)

// Node is the cluster's view of the local fairserve process. Implemented
// by *server.Server; kept minimal so the cluster layer stays testable
// with a fake.
type Node interface {
	// Depth reports the local queue population.
	Depth() (queued, running int)
	// Datasets lists the dataset/snapshot names resolvable locally.
	Datasets() []string
	// SubmitLocal enqueues a raw wire spec on the local queue, bypassing
	// cluster forwarding. Dedup by canonical spec hash still applies.
	SubmitLocal(spec json.RawMessage) error
	// Hydrate fetches the named snapshot from peerURL (range-requested,
	// resumable) and registers it locally. Idempotent per name.
	Hydrate(name, peerURL string) error
}

// Config configures a Cluster.
type Config struct {
	// Self is this node's advertised base URL (peers reach it there).
	Self string
	// NodeID is this node's stable identity on the ring.
	NodeID string
	// Peers are the other nodes' base URLs (static membership; entries
	// equal to Self are ignored).
	Peers []string
	// Heartbeat is the liveness/steal/hydrate tick interval (default 1s).
	Heartbeat time.Duration
	// PeerTimeout bounds each peer HTTP call (default 2s).
	PeerTimeout time.Duration
	// SuspectAfter is how many consecutive missed heartbeats mark a peer
	// dead (default 3).
	SuspectAfter int
	// StealBatch is the most jobs one steal round requests (default 8).
	StealBatch int
	// DisableStealing turns the idle-node steal loop off.
	DisableStealing bool
	// DisableHydration turns automatic snapshot hydration off.
	DisableHydration bool
	// Metrics, when non-nil, receives the cluster telemetry series.
	Metrics *telemetry.Registry
	// Logf receives cluster log lines (e.g. log.Printf); nil disables.
	Logf func(format string, args ...any)
	// Client overrides the peer HTTP client (tests).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.StealBatch <= 0 {
		c.StealBatch = 8
	}
	return c
}

// peer is the tracked state of one configured peer URL.
type peer struct {
	URL      string
	ID       string // learned from the first successful ping
	Alive    bool
	Missed   int
	Queued   int
	Running  int
	Datasets map[string]bool
	LastSeen time.Time
}

// placement records a job this node forwarded to a ring owner, so owner
// death can trigger re-placement. The spec travels as raw wire bytes —
// re-placement replays exactly what the client submitted.
type placement struct {
	Spec    json.RawMessage
	Dataset string
	Owner   string // peer URL
	JobID   string // owner-side job ID
}

// ForwardResult is the owner's answer to a forwarded submission, relayed
// verbatim to the original client.
type ForwardResult struct {
	Status int
	Body   []byte
	Owner  string // owner's base URL
}

// Cluster federates this node with its configured peers. Create with
// New; Close stops the background loop.
type Cluster struct {
	cfg    Config
	node   Node
	client *http.Client
	logf   func(string, ...any)
	met    clusterMetrics

	mu        sync.Mutex
	peers     map[string]*peer // by URL
	ring      *ring
	epoch     uint64
	remote    map[string]*placement // spec hash → forwarded placement
	hydrating map[string]bool       // dataset name → hydration in flight
	closed    bool

	stop chan struct{}
	loop sync.WaitGroup
	bg   sync.WaitGroup // hydrations and other spawned work
}

// maxTracked bounds the forwarded-placement tracker; beyond it the
// oldest entries are dropped (their owners' own durability still holds —
// only automatic re-placement on owner death is lost for them).
const maxTracked = 4096

// New builds the cluster layer over node and starts its heartbeat loop.
func New(node Node, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if node == nil {
		return nil, errors.New("cluster: New requires a Node")
	}
	if cfg.NodeID == "" {
		return nil, errors.New("cluster: NodeID is required")
	}
	if len(cfg.NodeID) > maxWireNodeID {
		return nil, fmt.Errorf("cluster: NodeID exceeds %d bytes", maxWireNodeID)
	}
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self URL is required")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Cluster{
		cfg:       cfg,
		node:      node,
		client:    client,
		logf:      logf,
		peers:     map[string]*peer{},
		remote:    map[string]*placement{},
		hydrating: map[string]bool{},
		ring:      newRing([]string{cfg.NodeID}),
		epoch:     1,
		stop:      make(chan struct{}),
	}
	for _, url := range cfg.Peers {
		if url == "" || url == cfg.Self {
			continue
		}
		if _, dup := c.peers[url]; dup {
			continue
		}
		c.peers[url] = &peer{URL: url, Datasets: map[string]bool{}}
	}
	c.initMetrics()
	c.loop.Add(1)
	go c.run()
	return c, nil
}

// NodeID returns this node's ring identity.
func (c *Cluster) NodeID() string { return c.cfg.NodeID }

// Epoch returns the current membership epoch; it bumps whenever the set
// of live ring members changes.
func (c *Cluster) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Close stops the heartbeat loop and waits for in-flight background
// work. Safe to call once.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	c.loop.Wait()
	c.bg.Wait()
}

func (c *Cluster) run() {
	defer c.loop.Done()
	t := time.NewTicker(c.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.tick()
		}
	}
}

// tick is one heartbeat round: probe peers, advance the epoch on
// membership change, re-place orphaned placements, hydrate missing
// datasets, steal if idle, and sweep the placement tracker.
func (c *Cluster) tick() {
	c.probePeers()
	orphans := c.advanceEpoch()
	for hash, p := range orphans {
		c.replace(hash, p)
	}
	if !c.cfg.DisableHydration {
		c.hydrateMissing()
	}
	if !c.cfg.DisableStealing {
		c.stealRound()
	}
	c.sweepTracked()
}

// probePeers pings every configured peer in parallel and folds the
// answers into the peer table.
func (c *Cluster) probePeers() {
	c.mu.Lock()
	urls := make([]string, 0, len(c.peers))
	for url := range c.peers {
		urls = append(urls, url)
	}
	c.mu.Unlock()
	type probe struct {
		url  string
		ping PingStatus
		err  error
	}
	results := make(chan probe, len(urls))
	for _, url := range urls {
		go func(url string) {
			status, body, err := c.doJSON(http.MethodGet, url+"/v1/cluster/ping", nil, nil)
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("cluster: ping status %d", status)
			}
			var ping PingStatus
			if err == nil {
				ping, err = DecodePing(body)
			}
			results <- probe{url: url, ping: ping, err: err}
		}(url)
	}
	// Gather every answer BEFORE taking the lock: answering an inbound
	// ping needs c.mu too, so holding it while awaiting our own outbound
	// pings would deadlock two nodes probing each other until timeout.
	gathered := make([]probe, 0, len(urls))
	for range urls {
		gathered = append(gathered, <-results)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, pr := range gathered {
		p := c.peers[pr.url]
		if p == nil {
			continue
		}
		if pr.err != nil {
			p.Missed++
			if p.Missed >= c.cfg.SuspectAfter && p.Alive {
				p.Alive = false
				c.logf("cluster: peer %s (%s) dead after %d missed heartbeats", p.URL, p.ID, p.Missed)
			}
			c.met.setPeerUp(p.URL, false)
			continue
		}
		p.Missed = 0
		p.LastSeen = time.Now()
		p.ID = pr.ping.NodeID
		p.Queued = pr.ping.Queued
		p.Running = pr.ping.Running
		p.Datasets = map[string]bool{}
		for _, n := range pr.ping.Datasets {
			p.Datasets[n] = true
		}
		if !p.Alive {
			p.Alive = true
			c.logf("cluster: peer %s (%s) alive", p.URL, p.ID)
		}
		c.met.setPeerUp(p.URL, true)
		c.met.setPeerQueued(p.URL, p.Queued)
	}
}

// advanceEpoch rebuilds the ring over the live membership. When it
// changed, the epoch bumps and every tracked placement whose owner left
// the ring is returned for re-placement.
func (c *Cluster) advanceEpoch() map[string]*placement {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := []string{c.cfg.NodeID}
	aliveURL := map[string]bool{}
	for _, p := range c.peers {
		if p.Alive && p.ID != "" {
			ids = append(ids, p.ID)
			aliveURL[p.URL] = true
		}
	}
	next := newRing(ids)
	if slicesEqual(next.nodes(), c.ring.nodes()) {
		return nil
	}
	c.ring = next
	c.epoch++
	c.met.setEpoch(c.epoch)
	c.met.setRingShare(next)
	c.logf("cluster: epoch %d, ring members %v", c.epoch, next.nodes())
	orphans := map[string]*placement{}
	for hash, p := range c.remote {
		if !aliveURL[p.Owner] {
			orphans[hash] = p
			delete(c.remote, hash)
		}
	}
	return orphans
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// replace re-places one orphaned job after its owner died: to the new
// ring owner when one is alive and holds the dataset, locally otherwise.
// Determinism and spec-hash dedup make the occasional duplicate run
// (the dead owner may have finished the job already) harmless.
func (c *Cluster) replace(hash string, p *placement) {
	c.met.incReplacements()
	if fw := c.PlaceJob(hash, p.Dataset, p.Spec); fw != nil && fw.Status < 300 {
		c.logf("cluster: re-placed job %s (was on %s) onto %s", hash[:8], p.Owner, fw.Owner)
		return
	}
	if err := c.node.SubmitLocal(p.Spec); err != nil {
		// Keep the orphan tracked so the next epoch change retries it.
		c.logf("cluster: re-place %s locally: %v", hash[:8], err)
		c.mu.Lock()
		if _, exists := c.remote[hash]; !exists && len(c.remote) < maxTracked {
			c.remote[hash] = p
		}
		c.mu.Unlock()
		return
	}
	c.logf("cluster: re-placed job %s (was on %s) locally", hash[:8], p.Owner)
}

// PlaceJob routes one job submission by its canonical spec hash. A nil
// return means "run it locally" — this node owns the hash, the ring is
// empty, the owner lacks the dataset, or the forward failed (local
// execution is always the safe fallback). A non-nil result carries the
// owner's HTTP answer to relay, already tracked for re-placement when
// it was a success.
func (c *Cluster) PlaceJob(specHash, dsName string, body []byte) *ForwardResult {
	c.mu.Lock()
	ownerID := c.ring.owner(specHash)
	var owner *peer
	if ownerID != "" && ownerID != c.cfg.NodeID {
		for _, p := range c.peers {
			if p.Alive && p.ID == ownerID {
				owner = p
				break
			}
		}
	}
	if owner == nil || (dsName != "" && !owner.Datasets[dsName]) {
		c.mu.Unlock()
		return nil
	}
	url := owner.URL
	c.mu.Unlock()

	status, respBody, err := c.doForward(url, body)
	if err != nil {
		c.logf("cluster: forward to %s: %v (running locally)", url, err)
		return nil
	}
	if status < 300 {
		var resp struct {
			ID string `json:"id"`
		}
		_ = json.Unmarshal(respBody, &resp)
		c.track(specHash, dsName, url, resp.ID, body)
		c.met.incForwards(url)
	}
	return &ForwardResult{Status: status, Body: respBody, Owner: url}
}

// doForward posts a job body to owner's submit route with the loop-guard
// header stamped.
func (c *Cluster) doForward(ownerURL string, body []byte) (int, []byte, error) {
	return c.doJSON(http.MethodPost, ownerURL+"/v1/jobs", body, func(r *http.Request) {
		r.Header.Set(HeaderForwarded, c.cfg.NodeID)
	})
}

// track remembers where a job went so owner death can re-place it.
func (c *Cluster) track(specHash, dsName, ownerURL, jobID string, spec []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.remote) >= maxTracked {
		for h := range c.remote { // evict an arbitrary entry; see maxTracked
			delete(c.remote, h)
			break
		}
	}
	c.remote[specHash] = &placement{
		Spec:    append(json.RawMessage(nil), spec...),
		Dataset: dsName,
		Owner:   ownerURL,
		JobID:   jobID,
	}
}

// sweepTracked probes a few tracked placements per tick and drops those
// whose owner reports a terminal job, bounding the tracker to jobs that
// still need the safety net.
func (c *Cluster) sweepTracked() {
	const perTick = 8
	type probe struct {
		hash  string
		url   string
		jobID string
	}
	c.mu.Lock()
	var probes []probe
	for hash, p := range c.remote {
		if len(probes) >= perTick {
			break
		}
		if p.JobID != "" {
			probes = append(probes, probe{hash: hash, url: p.Owner, jobID: p.JobID})
		}
	}
	c.mu.Unlock()
	for _, pr := range probes {
		status, body, err := c.doJSON(http.MethodGet, pr.url+"/v1/jobs/"+pr.jobID, nil, func(r *http.Request) {
			r.Header.Set(HeaderScatter, c.cfg.NodeID)
		})
		if err != nil {
			continue // owner unreachable; epoch logic owns that case
		}
		var j struct {
			State string `json:"state"`
		}
		terminal := status == http.StatusNotFound ||
			(status == http.StatusOK && json.Unmarshal(body, &j) == nil && terminalState(j.State))
		if terminal {
			c.mu.Lock()
			delete(c.remote, pr.hash)
			c.mu.Unlock()
		}
	}
}

// terminalState mirrors jobs.State.Terminal over the wire without
// importing the jobs package.
func terminalState(s string) bool {
	switch s {
	case "done", "failed", "canceled", "stolen":
		return true
	}
	return false
}

// stealRound runs the thief side of work-stealing: when the local queue
// is empty, claim a batch from the most-loaded live peer, enqueue the
// jobs locally, and ack the claims that landed. Claims that fail to
// land are simply not acked — they expire on the victim and requeue.
func (c *Cluster) stealRound() {
	if queued, _ := c.node.Depth(); queued > 0 {
		return
	}
	c.mu.Lock()
	var victim *peer
	for _, p := range c.peers {
		if p.Alive && p.Queued > 0 && (victim == nil || p.Queued > victim.Queued) {
			victim = p
		}
	}
	var url string
	if victim != nil {
		url = victim.URL
	}
	c.mu.Unlock()
	if victim == nil {
		return
	}
	start := time.Now()
	reqBody, _ := json.Marshal(StealRequest{
		Thief:    c.cfg.NodeID,
		Max:      c.cfg.StealBatch,
		Datasets: c.node.Datasets(),
	})
	status, body, err := c.doJSON(http.MethodPost, url+"/v1/cluster/steal", reqBody, nil)
	if err != nil || status != http.StatusOK {
		return
	}
	resp, err := DecodeStealResponse(body)
	if err != nil {
		c.logf("cluster: steal from %s: %v", url, err)
		return
	}
	var acked []string
	for _, cl := range resp.Claims {
		if err := c.node.SubmitLocal(cl.Spec); err != nil {
			c.logf("cluster: stolen job %s did not land: %v", cl.JobID, err)
			continue
		}
		acked = append(acked, cl.Token)
	}
	if len(acked) == 0 {
		return
	}
	ackBody, _ := json.Marshal(AckRequest{Thief: c.cfg.NodeID, Tokens: acked})
	status, body, err = c.doJSON(http.MethodPost, url+"/v1/cluster/ack", ackBody, nil)
	if err != nil || status != http.StatusOK {
		// Lost ack: the claims expire and requeue on the victim; our
		// copies run too. Determinism makes the duplicates harmless.
		c.logf("cluster: ack to %s failed (status %d, err %v)", url, status, err)
		return
	}
	if ack, err := decodeAckResponse(body); err == nil && ack.Acked > 0 {
		c.met.addSteals(url, ack.Acked)
		c.met.observeSteal(time.Since(start))
	}
}

func decodeAckResponse(data []byte) (AckResponse, error) {
	var a AckResponse
	if err := decodeStrict(data, &a); err != nil {
		return AckResponse{}, err
	}
	return a, nil
}

// hydrateMissing spawns hydration of every dataset a live peer
// advertises that this node lacks. One hydration per name at a time;
// failures retry naturally on later ticks (hydration resumes from the
// persisted upload session).
func (c *Cluster) hydrateMissing() {
	have := map[string]bool{}
	for _, n := range c.node.Datasets() {
		have[n] = true
	}
	c.mu.Lock()
	type want struct{ name, url string }
	var wants []want
	for _, p := range c.peers {
		if !p.Alive {
			continue
		}
		for name := range p.Datasets {
			if have[name] || c.hydrating[name] {
				continue
			}
			c.hydrating[name] = true
			wants = append(wants, want{name: name, url: p.URL})
		}
	}
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return
	}
	for _, w := range wants {
		c.bg.Add(1)
		go func(name, url string) {
			defer c.bg.Done()
			err := c.node.Hydrate(name, url)
			c.mu.Lock()
			delete(c.hydrating, name)
			c.mu.Unlock()
			if err != nil {
				c.logf("cluster: hydrate %q from %s: %v", name, url, err)
				return
			}
			c.met.incHydrations(url)
			c.logf("cluster: hydrated %q from %s", name, url)
		}(w.name, w.url)
	}
}

// Ping assembles this node's heartbeat answer.
func (c *Cluster) Ping(queued, running, claimed int) PingStatus {
	return PingStatus{
		NodeID:   c.cfg.NodeID,
		Epoch:    c.Epoch(),
		Queued:   queued,
		Running:  running,
		Claimed:  claimed,
		Datasets: c.node.Datasets(),
	}
}

// PeerStatus is one peer's row in the GET /v1/cluster answer.
type PeerStatus struct {
	URL          string   `json:"url"`
	NodeID       string   `json:"node_id,omitempty"`
	Alive        bool     `json:"alive"`
	Queued       int      `json:"queued"`
	Running      int      `json:"running"`
	Datasets     []string `json:"datasets,omitempty"`
	LastSeenUnix int64    `json:"last_seen_unix,omitempty"`
}

// Status is the GET /v1/cluster body.
type Status struct {
	Enabled   bool         `json:"enabled"`
	NodeID    string       `json:"node_id,omitempty"`
	Self      string       `json:"self,omitempty"`
	Epoch     uint64       `json:"epoch,omitempty"`
	RingNodes []string     `json:"ring_nodes,omitempty"`
	Tracked   int          `json:"tracked_jobs,omitempty"`
	Peers     []PeerStatus `json:"peers,omitempty"`
}

// Status reports the cluster view for the status endpoint.
func (c *Cluster) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Enabled:   true,
		NodeID:    c.cfg.NodeID,
		Self:      c.cfg.Self,
		Epoch:     c.epoch,
		RingNodes: append([]string(nil), c.ring.nodes()...),
		Tracked:   len(c.remote),
	}
	for _, p := range c.peers {
		ps := PeerStatus{
			URL: p.URL, NodeID: p.ID, Alive: p.Alive,
			Queued: p.Queued, Running: p.Running,
		}
		if !p.LastSeen.IsZero() {
			ps.LastSeenUnix = p.LastSeen.Unix()
		}
		for name := range p.Datasets {
			ps.Datasets = append(ps.Datasets, name)
		}
		sort.Strings(ps.Datasets)
		st.Peers = append(st.Peers, ps)
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].URL < st.Peers[j].URL })
	return st
}

// PeerRef identifies one live peer for scatter-gather fan-out.
type PeerRef struct {
	ID  string
	URL string
}

// AlivePeers returns the live peers, sorted by node ID so scatter-gather
// visits nodes in a stable order.
func (c *Cluster) AlivePeers() []PeerRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []PeerRef
	for _, p := range c.peers {
		if p.Alive {
			out = append(out, PeerRef{ID: p.ID, URL: p.URL})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DownPeers counts configured peers currently considered dead. A
// scatter-gather page assembled while this is non-zero is partial even
// though no fan-out call failed — the dead peers were never asked.
func (c *Cluster) DownPeers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.peers {
		if !p.Alive {
			n++
		}
	}
	return n
}

// PeerTimeout exposes the per-peer call budget for scatter-gather.
func (c *Cluster) PeerTimeout() time.Duration { return c.cfg.PeerTimeout }

// Fetch performs one bounded, timeout-guarded GET against a peer URL on
// behalf of the server's scatter-gather reads, stamping the scatter
// loop guard so the peer answers from local state only.
func (c *Cluster) Fetch(url string) (int, []byte, error) {
	return c.doJSON(http.MethodGet, url, nil, func(r *http.Request) {
		r.Header.Set(HeaderScatter, c.cfg.NodeID)
	})
}

// doJSON performs one bounded peer call: per-call timeout, body capped
// at MaxMessageBytes, optional request mutation (headers).
func (c *Cluster) doJSON(method, url string, body []byte, mut func(*http.Request)) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PeerTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if mut != nil {
		mut(req)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxMessageBytes+1))
	if err != nil {
		return 0, nil, err
	}
	if len(data) > MaxMessageBytes {
		return 0, nil, fmt.Errorf("cluster: response from %s exceeds %d bytes", url, MaxMessageBytes)
	}
	return resp.StatusCode, data, nil
}
