package cluster

import (
	"fmt"
	"math"
	"testing"
)

// TestRingDeterministic: every node building a ring over the same
// membership must get byte-identical placement, regardless of the
// order (or duplication) of the input list.
func TestRingDeterministic(t *testing.T) {
	a := newRing([]string{"node-a", "node-b", "node-c"})
	b := newRing([]string{"node-c", "node-a", "node-b", "node-a", ""})
	if fmt.Sprint(a.nodes()) != fmt.Sprint(b.nodes()) {
		t.Fatalf("memberships differ: %v vs %v", a.nodes(), b.nodes())
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("spec-hash-%d", i)
		if ao, bo := a.owner(key), b.owner(key); ao != bo {
			t.Fatalf("key %q: owner %q vs %q", key, ao, bo)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := newRing(nil)
	if got := empty.owner("anything"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	if n := len(empty.share()); n != 0 {
		t.Fatalf("empty ring share has %d entries", n)
	}
	solo := newRing([]string{"only"})
	for i := 0; i < 100; i++ {
		if got := solo.owner(fmt.Sprintf("k%d", i)); got != "only" {
			t.Fatalf("single-node ring owner = %q", got)
		}
	}
	if s := solo.share()["only"]; math.Abs(s-1) > 1e-9 {
		t.Fatalf("single-node share = %v, want 1", s)
	}
}

// TestRingBalance: with 64 vnodes per node, a 3-node ring should split
// both the measured keyspace share and an empirical key sample roughly
// evenly — no node starved or dominant.
func TestRingBalance(t *testing.T) {
	nodes := []string{"node-a", "node-b", "node-c"}
	r := newRing(nodes)
	share := r.share()
	var sum float64
	for _, id := range nodes {
		s := share[id]
		sum += s
		if s < 0.15 || s > 0.55 {
			t.Errorf("node %s keyspace share %.3f outside [0.15, 0.55]", id, s)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("job-spec-%d", i))]++
	}
	for _, id := range nodes {
		frac := float64(counts[id]) / keys
		if math.Abs(frac-share[id]) > 0.05 {
			t.Errorf("node %s: empirical %.3f vs share %.3f", id, frac, share[id])
		}
	}
}

// TestRingStability: removing one node from a 4-node ring must only
// move keys that the departed node owned — consistent hashing's whole
// point. Keys owned by surviving nodes stay put.
func TestRingStability(t *testing.T) {
	before := newRing([]string{"node-a", "node-b", "node-c", "node-d"})
	after := newRing([]string{"node-a", "node-b", "node-c"})
	moved, kept, orphaned := 0, 0, 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		ob, oa := before.owner(key), after.owner(key)
		switch {
		case ob == "node-d":
			orphaned++
			if oa == "node-d" {
				t.Fatalf("key %q still owned by departed node", key)
			}
		case ob == oa:
			kept++
		default:
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving nodes (kept %d, orphaned %d)", moved, kept, orphaned)
	}
	if orphaned == 0 {
		t.Fatal("departed node owned zero keys; balance test should have caught this")
	}
}
