package cluster

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDecodePing(t *testing.T) {
	good := `{"node_id":"n1","epoch":3,"queued":2,"running":1,"claimed":0,"datasets":["demo"]}`
	p, err := DecodePing([]byte(good))
	if err != nil {
		t.Fatalf("good ping rejected: %v", err)
	}
	if p.NodeID != "n1" || p.Epoch != 3 || p.Queued != 2 || len(p.Datasets) != 1 {
		t.Fatalf("ping decoded wrong: %+v", p)
	}
	bad := map[string]string{
		"unknown field":  `{"node_id":"n1","bogus":true}`,
		"trailing data":  `{"node_id":"n1"} {"x":1}`,
		"missing id":     `{"queued":1}`,
		"negative depth": `{"node_id":"n1","queued":-1}`,
		"huge id":        `{"node_id":"` + strings.Repeat("x", maxWireNodeID+1) + `"}`,
		"empty ds name":  `{"node_id":"n1","datasets":[""]}`,
		"not json":       `]][[`,
		"wrong type":     `{"node_id":42}`,
	}
	for name, body := range bad {
		if _, err := DecodePing([]byte(body)); err == nil {
			t.Errorf("%s: accepted %q", name, body)
		}
	}
}

func TestDecodeStealRequest(t *testing.T) {
	req, err := DecodeStealRequest([]byte(`{"thief":"n2","max":8,"datasets":["demo","other"]}`))
	if err != nil {
		t.Fatalf("good steal request rejected: %v", err)
	}
	if req.Thief != "n2" || req.Max != 8 {
		t.Fatalf("steal request decoded wrong: %+v", req)
	}
	bad := []string{
		`{"thief":"n2"}`,           // max missing (0)
		`{"thief":"n2","max":-1}`,  // negative
		`{"thief":"","max":4}`,     // empty thief
		`{"thief":"n2","max":4,"datasets":[` + strings.Repeat(`"d",`, maxWireDatasets) + `"d"]}`,
		`{"max":999999,"thief":"n2"}`, // over batch bound
	}
	for _, body := range bad {
		if _, err := DecodeStealRequest([]byte(body)); err == nil {
			t.Errorf("accepted %.60q", body)
		}
	}
}

func TestDecodeStealResponse(t *testing.T) {
	good := `{"claims":[{"token":"t1","job_id":"job-1","spec_hash":"abc","spec":{"dataset":"demo"}}]}`
	resp, err := DecodeStealResponse([]byte(good))
	if err != nil {
		t.Fatalf("good steal response rejected: %v", err)
	}
	if len(resp.Claims) != 1 || resp.Claims[0].Token != "t1" {
		t.Fatalf("steal response decoded wrong: %+v", resp)
	}
	if string(resp.Claims[0].Spec) != `{"dataset":"demo"}` {
		t.Fatalf("spec not preserved raw: %s", resp.Claims[0].Spec)
	}
	if _, err := DecodeStealResponse([]byte(`{}`)); err != nil {
		t.Fatalf("empty claim batch should be valid: %v", err)
	}
	bad := []string{
		`{"claims":[{"token":"","job_id":"j","spec_hash":"h","spec":{}}]}`,
		`{"claims":[{"token":"t","job_id":"j","spec_hash":"","spec":{}}]}`,
		`{"claims":[{"token":"t","job_id":"j","spec_hash":"h"}]}`, // no spec
		`{"claims":[{"token":"` + strings.Repeat("t", maxWireToken+1) + `","job_id":"j","spec_hash":"h","spec":{}}]}`,
	}
	for _, body := range bad {
		if _, err := DecodeStealResponse([]byte(body)); err == nil {
			t.Errorf("accepted %.80q", body)
		}
	}
}

func TestDecodeAckRequest(t *testing.T) {
	req, err := DecodeAckRequest([]byte(`{"thief":"n2","tokens":["t1","t2"]}`))
	if err != nil {
		t.Fatalf("good ack rejected: %v", err)
	}
	if len(req.Tokens) != 2 {
		t.Fatalf("ack decoded wrong: %+v", req)
	}
	bad := []string{
		`{"thief":"n2","tokens":[]}`,
		`{"thief":"n2"}`,
		`{"tokens":["t"]}`,
		`{"thief":"n2","tokens":[""]}`,
	}
	for _, body := range bad {
		if _, err := DecodeAckRequest([]byte(body)); err == nil {
			t.Errorf("accepted %q", body)
		}
	}
}

// TestDecodersRoundTrip: every message the package emits must survive
// its own strict decoder — the encoder and the bounds can't drift apart.
func TestDecodersRoundTrip(t *testing.T) {
	ping := PingStatus{NodeID: "n1", Epoch: 7, Queued: 1, Running: 2, Claimed: 3, Datasets: []string{"a", "b"}}
	b, _ := json.Marshal(ping)
	if got, err := DecodePing(b); err != nil || got.Epoch != ping.Epoch {
		t.Fatalf("ping round trip: %+v, %v", got, err)
	}
	steal := StealRequest{Thief: "n2", Max: 8, Datasets: []string{"a"}}
	b, _ = json.Marshal(steal)
	if got, err := DecodeStealRequest(b); err != nil || got.Max != 8 {
		t.Fatalf("steal request round trip: %+v, %v", got, err)
	}
	resp := StealResponse{Claims: []StealClaim{{Token: "t", JobID: "j", SpecHash: "h", Spec: json.RawMessage(`{}`)}}}
	b, _ = json.Marshal(resp)
	if got, err := DecodeStealResponse(b); err != nil || len(got.Claims) != 1 {
		t.Fatalf("steal response round trip: %+v, %v", got, err)
	}
	ack := AckRequest{Thief: "n2", Tokens: []string{"t"}}
	b, _ = json.Marshal(ack)
	if got, err := DecodeAckRequest(b); err != nil || len(got.Tokens) != 1 {
		t.Fatalf("ack round trip: %+v, %v", got, err)
	}
}
