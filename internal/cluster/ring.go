// Package cluster federates fairserve nodes into a multi-node audit
// cluster: static membership with heartbeat liveness, a consistent-hash
// ring keyed on canonical spec hashes for job placement (cluster-wide
// singleflight dedup falls out of the keying), work-stealing between
// idle and loaded nodes, and snapshot auto-hydration so a dataset
// uploaded to any node becomes auditable everywhere.
//
// The package speaks to peers over their public HTTP API plus the
// /v1/cluster/* peer protocol (protocol.go); it never imports the
// server package. The local process is abstracted behind the Node
// interface, implemented by *server.Server.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// vnodesPerNode is how many points each node contributes to the ring.
// More points smooth the keyspace split between nodes; 64 keeps the
// per-node imbalance in the low percents for small clusters while the
// whole ring stays a few KB.
const vnodesPerNode = 64

// ring is an immutable consistent-hash ring over node IDs. Lookup walks
// clockwise from the key's hash to the next virtual node; a key moves
// only when its arc's owner joins or leaves, so membership changes
// re-place an ~1/N share of the keyspace instead of reshuffling it all.
type ring struct {
	points []ringPoint // sorted by hash
	ids    []string    // member node IDs, sorted
}

type ringPoint struct {
	hash uint64
	node string
}

// hash64 maps a string onto the ring's keyspace. SHA-256 is already the
// spec-hash primitive (core.Spec.Hash), so placement inherits its
// uniformity; the first 8 bytes are plenty for 64-vnode rings.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds a ring over the given node IDs (deduplicated; empty
// IDs ignored). A ring over zero nodes is valid and owns nothing.
func newRing(nodes []string) *ring {
	seen := map[string]bool{}
	r := &ring{}
	for _, id := range nodes {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		r.ids = append(r.ids, id)
		for i := 0; i < vnodesPerNode; i++ {
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(i))
			r.points = append(r.points, ringPoint{
				hash: hash64(id + "#" + string(buf[:])),
				node: id,
			})
		}
	}
	sort.Strings(r.ids)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node ID so every ring
		// built over the same membership is identical on every node.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// owner returns the node owning key, or "" when the ring is empty.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last hash
	}
	return r.points[i].node
}

// nodes returns the member IDs, sorted.
func (r *ring) nodes() []string { return r.ids }

// share returns each node's fraction of the keyspace — the observable
// behind the per-node ring-ownership gauge.
func (r *ring) share() map[string]float64 {
	out := map[string]float64{}
	if len(r.points) == 0 {
		return out
	}
	const whole = float64(1 << 63) * 2 // 2^64 as float
	for i, p := range r.points {
		var arc uint64
		if i == 0 {
			// First point owns from the last point, wrapping through zero.
			arc = p.hash + (^r.points[len(r.points)-1].hash + 1)
		} else {
			arc = p.hash - r.points[i-1].hash
		}
		out[p.node] += float64(arc) / whole
	}
	return out
}
