// The peer protocol: the JSON bodies exchanged on /v1/cluster/* routes.
// Every inbound message goes through a strict decoder — unknown fields,
// trailing data, and out-of-bounds values are rejected — because peers
// are just HTTP clients and a half-upgraded or confused node must fail
// loudly, not be half-understood. FuzzClusterMessage drives these
// decoders in fuzz_test.go.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Forwarding-loop guards. A node forwarding a job to its ring owner
// stamps HeaderForwarded with its node ID; a receiving node never
// re-forwards a stamped submission, so divergent ring views during a
// membership change bound at one hop instead of looping. HeaderScatter
// marks scatter-gather fan-out reads the same way: a stamped GET is
// answered from local state only.
const (
	HeaderForwarded = "X-Fairrank-Forwarded"
	HeaderScatter   = "X-Fairrank-Scatter"
)

// Wire bounds. These are protocol limits, not tuning knobs: a message
// that exceeds them is malformed by definition.
const (
	// MaxMessageBytes bounds any /v1/cluster/* request or response body.
	MaxMessageBytes = 8 << 20
	// maxWireNodeID bounds node identifiers.
	maxWireNodeID = 128
	// maxWireDatasets bounds the dataset inventory in pings and steals.
	maxWireDatasets = 4096
	// maxWireName bounds one dataset name.
	maxWireName = 256
	// maxWireBatch bounds claims per steal and tokens per ack. It matches
	// jobs.MaxStealBatch with headroom so the two can evolve separately.
	maxWireBatch = 1024
	// maxWireToken bounds one claim token.
	maxWireToken = 256
	// maxWireSpec bounds one embedded job spec (matches the server's job
	// body limit).
	maxWireSpec = 1 << 20
)

// PingStatus is the heartbeat body: GET /v1/cluster/ping. It doubles as
// the peer's advertisement — queue depth feeds the work-stealing policy
// and the dataset inventory feeds placement eligibility and hydration.
type PingStatus struct {
	NodeID   string   `json:"node_id"`
	Epoch    uint64   `json:"epoch"`
	Queued   int      `json:"queued"`
	Running  int      `json:"running"`
	Claimed  int      `json:"claimed"`
	Datasets []string `json:"datasets,omitempty"`
}

// StealRequest asks a loaded peer to hand over up to Max queued jobs:
// POST /v1/cluster/steal. Datasets is the thief's inventory — the
// victim only releases jobs the thief can actually resolve.
type StealRequest struct {
	Thief    string   `json:"thief"`
	Max      int      `json:"max"`
	Datasets []string `json:"datasets,omitempty"`
}

// StealClaim is one job handed over pending ack. Spec stays raw: the
// thief re-submits it through its own strict jobs.DecodeSpec, and the
// cluster layer never needs to look inside.
type StealClaim struct {
	Token    string          `json:"token"`
	JobID    string          `json:"job_id"`
	SpecHash string          `json:"spec_hash"`
	Spec     json.RawMessage `json:"spec"`
}

// StealResponse is the victim's answer: zero or more claims.
type StealResponse struct {
	Claims []StealClaim `json:"claims,omitempty"`
}

// AckRequest finalizes a steal handoff after the thief has enqueued the
// jobs locally: POST /v1/cluster/ack.
type AckRequest struct {
	Thief  string   `json:"thief"`
	Tokens []string `json:"tokens"`
}

// AckResponse reports how many claims the ack actually finalized (late
// acks against expired claims finalize nothing, harmlessly).
type AckResponse struct {
	Acked int `json:"acked"`
}

// decodeStrict unmarshals one JSON value into v, rejecting unknown
// fields and trailing data.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("cluster: trailing data after message")
	}
	return nil
}

func checkNodeID(field, id string) error {
	if id == "" {
		return fmt.Errorf("cluster: %s is required", field)
	}
	if len(id) > maxWireNodeID {
		return fmt.Errorf("cluster: %s exceeds %d bytes", field, maxWireNodeID)
	}
	return nil
}

func checkDatasets(names []string) error {
	if len(names) > maxWireDatasets {
		return fmt.Errorf("cluster: %d dataset names exceeds %d", len(names), maxWireDatasets)
	}
	for _, n := range names {
		if n == "" || len(n) > maxWireName {
			return fmt.Errorf("cluster: bad dataset name %q", n)
		}
	}
	return nil
}

// DecodePing parses and validates a heartbeat body.
func DecodePing(data []byte) (PingStatus, error) {
	var p PingStatus
	if err := decodeStrict(data, &p); err != nil {
		return PingStatus{}, fmt.Errorf("cluster: bad ping: %w", err)
	}
	if err := checkNodeID("node_id", p.NodeID); err != nil {
		return PingStatus{}, err
	}
	if p.Queued < 0 || p.Running < 0 || p.Claimed < 0 {
		return PingStatus{}, errors.New("cluster: negative depth in ping")
	}
	if err := checkDatasets(p.Datasets); err != nil {
		return PingStatus{}, err
	}
	return p, nil
}

// DecodeStealRequest parses and validates a steal request.
func DecodeStealRequest(data []byte) (StealRequest, error) {
	var req StealRequest
	if err := decodeStrict(data, &req); err != nil {
		return StealRequest{}, fmt.Errorf("cluster: bad steal request: %w", err)
	}
	if err := checkNodeID("thief", req.Thief); err != nil {
		return StealRequest{}, err
	}
	if req.Max < 1 || req.Max > maxWireBatch {
		return StealRequest{}, fmt.Errorf("cluster: steal max %d outside [1, %d]", req.Max, maxWireBatch)
	}
	if err := checkDatasets(req.Datasets); err != nil {
		return StealRequest{}, err
	}
	return req, nil
}

// DecodeStealResponse parses and validates a victim's claim batch.
func DecodeStealResponse(data []byte) (StealResponse, error) {
	var resp StealResponse
	if err := decodeStrict(data, &resp); err != nil {
		return StealResponse{}, fmt.Errorf("cluster: bad steal response: %w", err)
	}
	if len(resp.Claims) > maxWireBatch {
		return StealResponse{}, fmt.Errorf("cluster: %d claims exceeds %d", len(resp.Claims), maxWireBatch)
	}
	for i, c := range resp.Claims {
		if c.Token == "" || len(c.Token) > maxWireToken {
			return StealResponse{}, fmt.Errorf("cluster: claim %d has bad token", i)
		}
		if c.SpecHash == "" || len(c.SpecHash) > maxWireToken {
			return StealResponse{}, fmt.Errorf("cluster: claim %d has bad spec hash", i)
		}
		if len(c.Spec) == 0 || len(c.Spec) > maxWireSpec {
			return StealResponse{}, fmt.Errorf("cluster: claim %d has bad spec (%d bytes)", i, len(c.Spec))
		}
	}
	return resp, nil
}

// DecodeAckRequest parses and validates a steal ack.
func DecodeAckRequest(data []byte) (AckRequest, error) {
	var req AckRequest
	if err := decodeStrict(data, &req); err != nil {
		return AckRequest{}, fmt.Errorf("cluster: bad ack: %w", err)
	}
	if err := checkNodeID("thief", req.Thief); err != nil {
		return AckRequest{}, err
	}
	if len(req.Tokens) == 0 || len(req.Tokens) > maxWireBatch {
		return AckRequest{}, fmt.Errorf("cluster: %d tokens outside [1, %d]", len(req.Tokens), maxWireBatch)
	}
	for _, tok := range req.Tokens {
		if tok == "" || len(tok) > maxWireToken {
			return AckRequest{}, fmt.Errorf("cluster: bad token %q", tok)
		}
	}
	return req, nil
}
