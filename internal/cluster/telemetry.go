package cluster

import (
	"time"

	"fairrank/internal/telemetry"
)

// Metric names exported on the cluster's registry.
const (
	// MetricEpoch gauges the membership epoch; it bumps whenever the set
	// of live ring members changes.
	MetricEpoch = "fairrank_cluster_epoch"
	// MetricPeersAlive gauges how many configured peers are live.
	MetricPeersAlive = "fairrank_cluster_peers_alive"
	// MetricTracked gauges forwarded jobs still tracked for re-placement.
	MetricTracked = "fairrank_cluster_tracked_jobs"
	// MetricRingShare gauges each ring member's keyspace fraction,
	// labeled by node ID.
	MetricRingShare = "fairrank_cluster_ring_share"
	// MetricPeerUp gauges per-peer liveness (1 alive, 0 dead/unknown).
	MetricPeerUp = "fairrank_cluster_peer_up"
	// MetricPeerQueued gauges each live peer's last-reported queue depth.
	MetricPeerQueued = "fairrank_cluster_peer_queued"
	// MetricForwards counts job submissions forwarded to each ring owner.
	MetricForwards = "fairrank_cluster_forwards_total"
	// MetricSteals counts jobs successfully stolen (acked) from each peer.
	MetricSteals = "fairrank_cluster_steals_total"
	// MetricHydrations counts snapshots hydrated from each peer.
	MetricHydrations = "fairrank_cluster_hydrations_total"
	// MetricReplacements counts re-placements triggered by owner death.
	MetricReplacements = "fairrank_cluster_replacements_total"
	// MetricStealSeconds is the steal-round latency histogram
	// (request → acked handoff).
	MetricStealSeconds = "fairrank_cluster_steal_seconds"
)

// clusterMetrics resolves the per-peer series once at construction
// (membership is static) and the per-ring-member series lazily as IDs
// are learned from pings. Nil-safe: a cluster without a registry runs
// with every method a no-op.
type clusterMetrics struct {
	reg          *telemetry.Registry
	epoch        *telemetry.Gauge
	replacements *telemetry.Counter
	stealSecs    *telemetry.Histogram
	peerUp       map[string]*telemetry.Gauge
	peerQueued   map[string]*telemetry.Gauge
	forwards     map[string]*telemetry.Counter
	steals       map[string]*telemetry.Counter
	hydrations   map[string]*telemetry.Counter
	lastShare    map[string]bool // ring members with a non-zero share gauge
}

func (c *Cluster) initMetrics() {
	reg := c.cfg.Metrics
	if reg == nil {
		return
	}
	m := clusterMetrics{
		reg:          reg,
		epoch:        reg.Gauge(MetricEpoch),
		replacements: reg.Counter(MetricReplacements),
		stealSecs:    reg.Histogram(MetricStealSeconds, telemetry.DefBuckets()),
		peerUp:       map[string]*telemetry.Gauge{},
		peerQueued:   map[string]*telemetry.Gauge{},
		forwards:     map[string]*telemetry.Counter{},
		steals:       map[string]*telemetry.Counter{},
		hydrations:   map[string]*telemetry.Counter{},
		lastShare:    map[string]bool{},
	}
	peerLabel := func(url string) telemetry.Label { return telemetry.Label{Key: "peer", Value: url} }
	for url := range c.peers {
		m.peerUp[url] = reg.Gauge(MetricPeerUp, peerLabel(url))
		m.peerQueued[url] = reg.Gauge(MetricPeerQueued, peerLabel(url))
		m.forwards[url] = reg.Counter(MetricForwards, peerLabel(url))
		m.steals[url] = reg.Counter(MetricSteals, peerLabel(url))
		m.hydrations[url] = reg.Counter(MetricHydrations, peerLabel(url))
	}
	reg.GaugeFunc(MetricPeersAlive, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, p := range c.peers {
			if p.Alive {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc(MetricTracked, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.remote))
	})
	m.epoch.Set(1)
	c.met = m
}

func (m *clusterMetrics) setEpoch(e uint64) {
	if m.epoch != nil {
		m.epoch.Set(float64(e))
	}
}

// setRingShare refreshes the per-member keyspace gauges, zeroing members
// that left the ring. Called with c.mu held (ring reads).
func (m *clusterMetrics) setRingShare(r *ring) {
	if m.reg == nil {
		return
	}
	share := r.share()
	for id := range m.lastShare {
		if _, still := share[id]; !still {
			m.reg.Gauge(MetricRingShare, telemetry.Label{Key: "node", Value: id}).Set(0)
			delete(m.lastShare, id)
		}
	}
	for id, frac := range share {
		m.reg.Gauge(MetricRingShare, telemetry.Label{Key: "node", Value: id}).Set(frac)
		m.lastShare[id] = true
	}
}

func (m *clusterMetrics) setPeerUp(url string, up bool) {
	if g := m.peerUp[url]; g != nil {
		if up {
			g.Set(1)
		} else {
			g.Set(0)
		}
	}
}

func (m *clusterMetrics) setPeerQueued(url string, depth int) {
	if g := m.peerQueued[url]; g != nil {
		g.Set(float64(depth))
	}
}

func (m *clusterMetrics) incForwards(url string) {
	if ctr := m.forwards[url]; ctr != nil {
		ctr.Inc()
	}
}

func (m *clusterMetrics) addSteals(url string, n int) {
	if ctr := m.steals[url]; ctr != nil {
		ctr.Add(int64(n))
	}
}

func (m *clusterMetrics) incHydrations(url string) {
	if ctr := m.hydrations[url]; ctr != nil {
		ctr.Inc()
	}
}

func (m *clusterMetrics) incReplacements() {
	if m.replacements != nil {
		m.replacements.Inc()
	}
}

func (m *clusterMetrics) observeSteal(d time.Duration) {
	if m.stealSecs != nil {
		m.stealSecs.Observe(d.Seconds())
	}
}
