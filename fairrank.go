package fairrank

import (
	"context"
	"io"

	"fairrank/internal/campaign"
	"fairrank/internal/core"
	"fairrank/internal/dataset"
	"fairrank/internal/emd"
	"fairrank/internal/partition"
	"fairrank/internal/query"
	"fairrank/internal/scoring"
	"fairrank/internal/simulate"
)

// Re-exported data-model types. The implementation lives in internal
// packages; these aliases are the supported public surface.
type (
	// Dataset is an immutable columnar worker population.
	Dataset = dataset.Dataset
	// Builder incrementally assembles a Dataset.
	Builder = dataset.Builder
	// Schema declares a population's protected and observed attributes.
	Schema = dataset.Schema
	// Attribute describes one worker attribute.
	Attribute = dataset.Attribute
	// Kind distinguishes categorical from numeric attributes.
	Kind = dataset.Kind

	// ScoringFunc scores workers for a task; all scores are in [0,1].
	ScoringFunc = scoring.Func
	// LinearFunc is a weighted sum of observed attributes (Definition 1).
	LinearFunc = scoring.Linear
	// RuleFunc scores workers by protected-attribute rules; used to model
	// scoring functions that are unfair by design.
	RuleFunc = scoring.RuleFunc
	// Rule assigns a score range to workers matching a predicate.
	Rule = scoring.Rule
	// Predicate selects workers by their protected attributes.
	Predicate = scoring.Predicate

	// Partition is a worker group defined by protected-attribute values.
	Partition = partition.Partition
	// Partitioning is a full disjoint partitioning of the population.
	Partitioning = partition.Partitioning

	// Config tunes unfairness measurement (bins, metric, parallelism).
	Config = core.Config
	// Result is the outcome of one audit: the most unfair partitioning
	// found, its unfairness, runtime and decision trace.
	Result = core.Result
	// TraceStep records one splitting decision of an audit.
	TraceStep = core.TraceStep
	// Evaluator computes (and caches) unfairness for one dataset/function
	// pair; most callers use Auditor instead.
	Evaluator = core.Evaluator
	// AuditSpec describes one audit run for Run: which algorithm, over
	// which evaluator, with what seed and budget.
	AuditSpec = core.Spec
	// RunStats reports the engine work one audit performed.
	RunStats = core.RunStats

	// Metric identifies a histogram distance (EMD by default).
	Metric = emd.Metric
	// Ground selects the EMD ground distance.
	Ground = emd.Ground
)

// Attribute kinds.
const (
	// Categorical attributes take one of an enumerated set of values.
	Categorical = dataset.Categorical
	// Numeric attributes take values in a range, bucketized for
	// partitioning.
	Numeric = dataset.Numeric
)

// Histogram distance metrics. MetricEMD is the paper's choice; the rest are
// the alternative formulations the paper names as future work.
const (
	MetricEMD       = emd.MetricEMD
	MetricL1        = emd.MetricL1
	MetricTV        = emd.MetricTV
	MetricChiSquare = emd.MetricChiSquare
	MetricJS        = emd.MetricJS
	MetricKS        = emd.MetricKS
	MetricHellinger = emd.MetricHellinger
)

// EMD ground distances.
const (
	// GroundScore measures bin distance in score units (default).
	GroundScore = emd.GroundScore
	// GroundIndex normalizes bin distance so the maximum EMD is 1.
	GroundIndex = emd.GroundIndex
)

// Cat declares a categorical attribute.
func Cat(name string, values ...string) Attribute { return dataset.Cat(name, values...) }

// Num declares a numeric attribute bucketized into buckets ranges when
// used for partitioning.
func Num(name string, min, max float64, buckets int) Attribute {
	return dataset.Num(name, min, max, buckets)
}

// NewBuilder starts building a dataset for the given schema.
func NewBuilder(schema *Schema) *Builder { return dataset.NewBuilder(schema) }

// ReadCSV loads a dataset in fairrank's CSV layout against a schema.
func ReadCSV(r io.Reader, schema *Schema) (*Dataset, error) { return dataset.ReadCSV(r, schema) }

// ReadJSON loads a dataset in fairrank's JSON layout against a schema.
func ReadJSON(r io.Reader, schema *Schema) (*Dataset, error) { return dataset.ReadJSON(r, schema) }

// InferOptions controls schema inference from arbitrary CSV exports.
type InferOptions = dataset.InferOptions

// InferCSV loads a CSV with a header row and infers a schema from the
// named columns (numeric vs categorical decided by the data), so real
// platform exports can be audited without hand-writing a schema.
func InferCSV(r io.Reader, opts InferOptions) (*Dataset, error) {
	return dataset.InferCSV(r, opts)
}

// NewLinearFunc builds a linear scoring function from observed-attribute
// weights; weights are normalized to sum to 1.
func NewLinearFunc(name string, weights map[string]float64) (*LinearFunc, error) {
	return scoring.NewLinear(name, weights)
}

// NewRuleFunc builds a rule-based scoring function. Rules apply in order;
// the first match decides the worker's score range.
func NewRuleFunc(name string, seed uint64, rules []Rule) (*RuleFunc, error) {
	return scoring.NewRuleFunc(name, seed, rules)
}

// FuncOf adapts an arbitrary function into a ScoringFunc.
func FuncOf(name string, fn func(ds *Dataset, i int) float64) ScoringFunc {
	return scoring.ScoreFunc{FuncName: name, Fn: fn}
}

// Predicate constructors for rule-based functions.
var (
	// AttrIs matches workers whose categorical attribute has one of the
	// given values.
	AttrIs = scoring.AttrIs
	// AttrInRange matches workers whose numeric attribute is in [lo, hi).
	AttrInRange = scoring.AttrInRange
	// And matches when all predicates match.
	And = scoring.And
	// Or matches when any predicate matches.
	Or = scoring.Or
	// Not inverts a predicate.
	Not = scoring.Not
	// Any matches every worker.
	Any = scoring.Any
)

// PaperSchema returns the EDBT-2019 paper's simulated attribute space: six
// protected attributes and two observed skills.
func PaperSchema() *Schema { return simulate.PaperSchema() }

// GenerateWorkers generates a synthetic worker population with uniformly
// random attribute values over PaperSchema, reproducibly from a seed.
func GenerateWorkers(n int, seed uint64) (*Dataset, error) {
	return simulate.PaperWorkers(n, seed)
}

// PopulationOptions shapes a synthetic population with demographic skew and
// skill-demographic correlations — a stand-in for real platform data, where
// latent correlations make even skill-only scoring functions unfair.
type PopulationOptions = simulate.Options

// GenerateSkewedWorkers generates a population over PaperSchema with the
// given skew/correlation options, reproducibly from a seed.
func GenerateSkewedWorkers(n int, seed uint64, opts PopulationOptions) (*Dataset, error) {
	return simulate.SkewedWorkers(n, seed, opts)
}

// NewEvaluator builds a low-level unfairness evaluator. Most callers should
// use Auditor.
func NewEvaluator(ds *Dataset, f ScoringFunc, cfg Config) (*Evaluator, error) {
	return core.NewEvaluator(ds, f, cfg)
}

// Run executes one audit described by spec under ctx: cancelling ctx (or
// exceeding its deadline) aborts the search and returns ctx.Err(). The
// algorithm is selected by registered name; see RegisteredAlgorithms.
func Run(ctx context.Context, spec AuditSpec) (*Result, error) {
	return core.Run(ctx, spec)
}

// CampaignOptions configures an audit campaign over many scoring
// functions.
type CampaignOptions = campaign.Options

// FunctionAudit is one scoring function's campaign outcome, including its
// permutation-test p-value and the Benjamini-Hochberg-corrected
// significance flag.
type FunctionAudit = campaign.FunctionAudit

// RunCampaign audits every function against the population, applying
// campaign-wide false-discovery-rate control to the significance flags.
// Results are in input order.
func RunCampaign(ds *Dataset, funcs []ScoringFunc, opts CampaignOptions) ([]FunctionAudit, error) {
	return campaign.Run(ds, funcs, opts)
}

// RunCampaignContext is RunCampaign under a context: cancelling ctx aborts
// every in-flight function audit and returns ctx.Err().
func RunCampaignContext(ctx context.Context, ds *Dataset, funcs []ScoringFunc, opts CampaignOptions) ([]FunctionAudit, error) {
	return campaign.RunContext(ctx, ds, funcs, opts)
}

// Query is a compiled requester query: a boolean expression over worker
// attributes such as "Gender = 'Female' AND YearsExperience >= 5", used to
// select the eligible candidates before ranking or auditing.
type Query = query.Compiled

// CompileQuery parses and binds a query expression against a schema.
// Supported syntax: =, !=, <, <=, >, >= comparisons, IN lists, AND/OR/NOT
// and parentheses; strings in single quotes.
func CompileQuery(text string, schema *Schema) (*Query, error) {
	e, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	return query.Compile(e, schema)
}
