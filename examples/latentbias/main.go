// Latent bias: the future-work scenario of the paper. Real platform data
// (Qapa, TaskRabbit) is not uniform — skills correlate with demographics.
// Here the scoring function is an innocent average of two skills, but the
// population gives English speakers systematically higher skill values; the
// audit must surface a Language-based partitioning with high unfairness and
// a significant permutation-test p-value, while the same function on an
// uncorrelated population audits as fair.
package main

import (
	"fmt"
	"log"

	"fairrank"
)

func main() {
	log.SetFlags(0)

	// The innocent function: equal-weight skill average (the paper's f1).
	f, err := fairrank.NewLinearFunc("f1", map[string]float64{
		"LanguageTest": 0.5,
		"ApprovalRate": 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	auditor := fairrank.NewAuditor()

	audit := func(label string, ds *fairrank.Dataset) {
		res, err := auditor.Audit(ds, f, fairrank.AlgoBalanced)
		if err != nil {
			log.Fatal(err)
		}
		var used []string
		for _, a := range res.Partitioning.AttributesUsed() {
			used = append(used, ds.Schema().Protected[a].Name)
		}
		p, obs, err := auditor.Significance(ds, f, res.Partitioning, 200)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", label)
		fmt.Printf("  unfairness %.3f (permutation p = %.3f), first splits: %v\n",
			obs, p, used)
		// Also check the Language grouping directly.
		byLang, err := fairrank.GroupBy(ds, "Language")
		if err != nil {
			log.Fatal(err)
		}
		u, err := auditor.Unfairness(ds, f, byLang)
		if err != nil {
			log.Fatal(err)
		}
		pl, _, err := auditor.Significance(ds, f, byLang, 200)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Language grouping: unfairness %.3f (p = %.3f)\n\n", u, pl)
	}

	neutral, err := fairrank.GenerateWorkers(1500, 9)
	if err != nil {
		log.Fatal(err)
	}
	audit("uncorrelated population (the paper's setting)", neutral)

	skewed, err := fairrank.GenerateSkewedWorkers(1500, 9, fairrank.PopulationOptions{
		GenderSkew: 0.6,
		SkillBias:  40, // English speakers' skills shifted up by 40 points
		BiasAttr:   "Language",
		BiasValue:  "English",
	})
	if err != nil {
		log.Fatal(err)
	}
	audit("skill-correlated population (simulated real-platform data)", skewed)

	fmt.Println("Same scoring function, very different audits: unfairness lives in the")
	fmt.Println("interaction between the function and the population it ranks.")
}
