// Monitoring: continuous fairness auditing of a live platform. Workers
// join, leave and are re-scored every day; the monitor maintains per-group
// score histograms incrementally and flags the day the platform's scoring
// drifts past the unfairness threshold. Here the drift is caused by a
// "reputation boost" feature that, from day 30 on, inflates the scores of
// newly joining male workers.
package main

import (
	"fmt"
	"log"
	"strings"

	"fairrank"
)

func main() {
	log.SetFlags(0)
	schema := fairrank.PaperSchema()
	mon, err := fairrank.NewMonitor(schema, []string{"Gender"}, 10, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	mon.SetMinWorkers(100) // warm-up: no alerts while the sample is tiny
	r := fairrank.NewRNG(7)
	genders := []string{"Male", "Female"}
	countries := []string{"America", "India", "Other"}
	languages := []string{"English", "Indian", "Other"}
	ethnicities := []string{"White", "African-American", "Indian", "Other"}

	randomWorker := func() map[string]any {
		return map[string]any{
			"Gender":          genders[r.Intn(2)],
			"Country":         countries[r.Intn(3)],
			"YearOfBirth":     1950 + r.Intn(60),
			"Language":        languages[r.Intn(3)],
			"Ethnicity":       ethnicities[r.Intn(4)],
			"YearsExperience": r.Intn(31),
		}
	}

	nextID := 0
	var active []string
	joined := map[string]bool{}
	firedOn := -1

	fmt.Println("day  workers  unfairness  alert")
	for day := 1; day <= 60; day++ {
		// ~20 joins per day; from day 30, male joiners get boosted scores.
		for j := 0; j < 20; j++ {
			attrs := randomWorker()
			score := r.Float64()
			if day >= 30 && attrs["Gender"] == "Male" {
				score = 0.7 + 0.3*r.Float64()
			}
			id := fmt.Sprintf("w%06d", nextID)
			nextID++
			if err := mon.Join(id, attrs, score); err != nil {
				log.Fatal(err)
			}
			active = append(active, id)
			joined[id] = true
		}
		// ~10 departures per day.
		for j := 0; j < 10 && len(active) > 0; j++ {
			k := r.Intn(len(active))
			id := active[k]
			active = append(active[:k], active[k+1:]...)
			if err := mon.Leave(id); err != nil {
				log.Fatal(err)
			}
		}
		u, breached := mon.Alert()
		marker := ""
		if breached {
			marker = "  *** DRIFT ***"
			if firedOn < 0 {
				firedOn = day
			}
		}
		if day%5 == 0 || breached && firedOn == day {
			fmt.Printf("%3d  %7d  %10.3f%s\n", day, mon.Workers(), u, marker)
		}
	}
	fmt.Println(strings.Repeat("-", 40))
	if firedOn > 0 {
		fmt.Printf("the boost shipped on day 30; the monitor fired on day %d\n", firedOn)
	} else {
		fmt.Println("no drift detected (unexpected)")
	}
}
