// Repair: detect bias, then repair it — the paper's stated future work.
// We score workers with the gender-discriminating f6, let the audit find
// the most unfair partitioning, then apply quantile-matching repair at
// increasing strengths and watch unfairness fall while within-group
// ranking is preserved.
package main

import (
	"fmt"
	"log"

	"fairrank"
)

func main() {
	log.SetFlags(0)
	ds, err := fairrank.GenerateWorkers(1000, 13)
	if err != nil {
		log.Fatal(err)
	}
	f6, err := fairrank.NewRuleFunc("f6", 13, []fairrank.Rule{
		{When: fairrank.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: fairrank.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		log.Fatal(err)
	}

	auditor := fairrank.NewAuditor()
	res, err := auditor.Audit(ds, f6, fairrank.AlgoBalanced)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit found unfairness %.3f over %d groups:\n",
		res.Unfairness, res.Partitioning.Size())
	fmt.Println(res.Partitioning.Describe(ds.Schema()))
	fmt.Println()

	fmt.Println("repair strength → unfairness of the repaired scores:")
	for _, amount := range []float64{0, 0.25, 0.5, 0.75, 1} {
		repaired, err := auditor.RepairedScores(ds, f6, res.Partitioning, amount)
		if err != nil {
			log.Fatal(err)
		}
		u, err := auditor.ScoreUnfairness(repaired, res.Partitioning)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  amount %.2f → %.3f\n", amount, u)
	}

	// Show the ranking effect: top 10 before vs after full repair.
	repaired, err := auditor.RepairedScores(ds, f6, res.Partitioning, 1)
	if err != nil {
		log.Fatal(err)
	}
	repairedFunc := fairrank.FuncOf("f6-repaired", func(d *fairrank.Dataset, i int) float64 {
		return repaired[i]
	})
	gender := ds.Schema().ProtectedIndex("Gender")
	count := func(f fairrank.ScoringFunc) (male, female int) {
		for _, rw := range fairrank.RankWorkers(ds, f, 20) {
			if ds.ProtectedLabel(gender, rw.Worker) == "Male" {
				male++
			} else {
				female++
			}
		}
		return male, female
	}
	m0, f0 := count(f6)
	m1, f1 := count(repairedFunc)
	fmt.Printf("\ntop-20 composition before repair: %d male / %d female\n", m0, f0)
	fmt.Printf("top-20 composition after  repair: %d male / %d female\n", m1, f1)
}
