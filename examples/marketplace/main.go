// Marketplace: simulate the platform the paper studies end to end. A
// requester posts a task, the platform returns a ranked list of workers,
// and we measure (1) how unequally the ranking exposes demographic groups,
// (2) how exposure disparity turns into hiring disparity over many
// requesters, and (3) what the fairness audit says about the task's scoring
// function.
package main

import (
	"fmt"
	"log"
	"sort"

	"fairrank"
)

func main() {
	log.SetFlags(0)
	workers, err := fairrank.GenerateWorkers(2000, 11)
	if err != nil {
		log.Fatal(err)
	}
	platform, err := fairrank.NewMarketplace(workers)
	if err != nil {
		log.Fatal(err)
	}

	// A requester posts a "help with HTML/CSS" gig that weighs the
	// language test heavily — the paper's observation is that functions
	// using fewer observed attributes are more likely to be unfair.
	task := fairrank.Task{
		ID:    "html-css-gig",
		Title: "help with HTML, JavaScript, CSS, and JQuery",
		Weights: map[string]float64{
			"LanguageTest": 0.9,
			"ApprovalRate": 0.1,
		},
	}
	if err := platform.PostTask(task); err != nil {
		log.Fatal(err)
	}

	// The platform's result page: the top 10 candidates.
	top, err := platform.Rank(task.ID, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-10 ranking for %q:\n", task.Title)
	gender := workers.Schema().ProtectedIndex("Gender")
	for _, rw := range top {
		fmt.Printf("  #%-2d %s  score %.3f  %s\n",
			rw.Rank, workers.ID(rw.Worker), rw.Score, workers.ProtectedLabel(gender, rw.Worker))
	}

	// Exposure: how much attention does each gender group receive?
	full, err := platform.Rank(task.ID, 100)
	if err != nil {
		log.Fatal(err)
	}
	exposure, err := fairrank.GroupExposure(workers, gender, full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngroup exposure in the top 100 (position-bias weighted):\n")
	keys := make([]string, 0, len(exposure))
	for k := range exposure {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-8s %.5f\n", k, exposure[k])
	}
	fmt.Printf("exposure disparity (max/min): %.2f\n", fairrank.ExposureDisparity(exposure))

	// Outcome: simulate 10000 employers hiring from the top 50.
	stats, err := platform.SimulateHiring(task.ID, gender, 50, 10000, fairrank.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhires by gender over %d simulated employers:\n", stats.Rounds)
	hk := make([]string, 0, len(stats.HiresByGroup))
	for k := range stats.HiresByGroup {
		hk = append(hk, k)
	}
	sort.Strings(hk)
	for _, k := range hk {
		fmt.Printf("  %-8s %d\n", k, stats.HiresByGroup[k])
	}

	// Long-run economics: how do assignment policies distribute income,
	// and does the ranking's bias become an earnings gap?
	f, err := platform.ScoringFunc(task.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nincome over 20000 assigned tasks (top-50 candidates):")
	for _, policy := range []fairrank.AssignmentPolicy{
		fairrank.PolicyTopRanked, fairrank.PolicyExposureWeighted, fairrank.PolicyRoundRobin,
	} {
		rep, err := platform.SimulateIncome(f, gender, 50, 20000, policy, fairrank.NewRNG(3))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s Gini %.3f  mean income M %.2f / F %.2f\n",
			rep.Policy, rep.Gini, rep.GroupIncome["Male"], rep.GroupIncome["Female"])
	}

	// The audit: is the task's scoring function unfair, and toward whom?
	res, err := fairrank.NewAuditor().Audit(workers, f, fairrank.AlgoUnbalanced)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naudit (unbalanced): unfairness %.3f over %d groups in %s\n",
		res.Unfairness, res.Partitioning.Size(), res.Elapsed)
}
