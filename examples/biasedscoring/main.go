// Biased scoring: reproduce the paper's qualitative study (Table 3). Four
// scoring functions are unfair by design — f6 discriminates on gender, f7
// on gender and nationality, f8 ranks only women by nationality, f9
// correlates with ethnicity, language and age. The audit must both measure
// high unfairness and recover exactly the attributes each function was
// designed to correlate with.
package main

import (
	"fmt"
	"log"
	"strings"

	"fairrank"
)

func main() {
	log.SetFlags(0)
	ds, err := fairrank.GenerateWorkers(2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	auditor := fairrank.NewAuditor()

	male := fairrank.AttrIs("Gender", "Male")
	female := fairrank.AttrIs("Gender", "Female")
	american := fairrank.AttrIs("Country", "America")
	indian := fairrank.AttrIs("Country", "India")

	type study struct {
		f      fairrank.ScoringFunc
		design string
	}
	var studies []study

	f6, err := fairrank.NewRuleFunc("f6", 6, []fairrank.Rule{
		{When: male, Lo: 0.8, Hi: 1.0},
		{When: female, Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		log.Fatal(err)
	}
	studies = append(studies, study{f6, "discriminates against females"})

	f7, err := fairrank.NewRuleFunc("f7", 7, []fairrank.Rule{
		{When: fairrank.And(male, american), Lo: 0.8, Hi: 1.0},
		{When: fairrank.And(female, american), Lo: 0.0, Hi: 0.2},
		{When: indian, Lo: 0.5, Hi: 0.7},
		{When: female, Lo: 0.8, Hi: 1.0},
		{When: male, Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		log.Fatal(err)
	}
	studies = append(studies, study{f7, "biased on gender × nationality"})

	f8, err := fairrank.NewRuleFunc("f8", 8, []fairrank.Rule{
		{When: fairrank.And(female, american), Lo: 0.8, Hi: 1.0},
		{When: fairrank.And(female, indian), Lo: 0.5, Hi: 0.8},
		{When: female, Lo: 0.0, Hi: 0.2},
		{When: fairrank.Any(), Lo: 0.0, Hi: 1.0},
	})
	if err != nil {
		log.Fatal(err)
	}
	studies = append(studies, study{f8, "ranks only women, by nationality"})

	for _, s := range studies {
		res, err := auditor.Audit(ds, s.f, fairrank.AlgoBalanced)
		if err != nil {
			log.Fatal(err)
		}
		var used []string
		for _, a := range res.Partitioning.AttributesUsed() {
			used = append(used, ds.Schema().Protected[a].Name)
		}
		fmt.Printf("%s (%s):\n", s.f.Name(), s.design)
		fmt.Printf("  balanced unfairness %.3f; partitioned on %s\n\n",
			res.Unfairness, strings.Join(used, ", "))
	}

	fmt.Println("For contrast, an unbiased random function under the same audit:")
	f1, err := fairrank.NewLinearFunc("f1", map[string]float64{
		"LanguageTest": 0.5, "ApprovalRate": 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := auditor.Audit(ds, f1, fairrank.AlgoBalanced)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  f1 unfairness %.3f — designed bias stands out clearly.\n", res.Unfairness)
}
