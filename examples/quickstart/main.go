// Quickstart: generate a worker population, define a scoring function, and
// find the most unfair partitioning with each of the paper's algorithms.
package main

import (
	"fmt"
	"log"

	"fairrank"
)

func main() {
	log.SetFlags(0)

	// A population of 500 workers over the paper's attribute space
	// (Gender, Country, YearOfBirth, Language, Ethnicity,
	// YearsExperience; skills LanguageTest and ApprovalRate).
	ds, err := fairrank.GenerateWorkers(500, 42)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's f2: f(w) = 0.3·LanguageTest + 0.7·ApprovalRate.
	f, err := fairrank.NewLinearFunc("f2", map[string]float64{
		"LanguageTest": 0.3,
		"ApprovalRate": 0.7,
	})
	if err != nil {
		log.Fatal(err)
	}

	auditor := fairrank.NewAuditor()
	fmt.Printf("auditing %d workers under %s\n\n", ds.N(), f.Name())
	results, err := auditor.AuditAll(ds, f)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		fmt.Printf("%-15s unfairness %.3f over %4d partitions in %s\n",
			res.Algorithm, res.Unfairness, res.Partitioning.Size(), res.Elapsed)
	}

	// Compare against a pre-defined grouping (prior work's setting):
	// splitting on Gender alone.
	byGender, err := fairrank.GroupBy(ds, "Gender")
	if err != nil {
		log.Fatal(err)
	}
	u, err := auditor.Unfairness(ds, f, byGender)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npre-defined Gender grouping alone: unfairness %.3f\n", u)
	fmt.Println("→ searching over attribute combinations finds more disparity than any single pre-defined split.")
}
