// Campaign: audit a whole catalog of task scoring functions at once. A
// platform hosts many tasks, each with its own weighting of worker skills;
// auditing them one by one at p < 0.05 would flag some by luck alone. The
// campaign runs every audit, permutation-tests each result, and applies
// Benjamini-Hochberg false-discovery-rate control across the catalog, so
// only the genuinely problematic functions are flagged.
package main

import (
	"fmt"
	"log"
	"strings"

	"fairrank"
)

func main() {
	log.SetFlags(0)
	ds, err := fairrank.GenerateWorkers(600, 21)
	if err != nil {
		log.Fatal(err)
	}

	// A catalog: eight innocuous linear functions with varying weights,
	// plus two designed-bias functions hiding among them.
	var funcs []fairrank.ScoringFunc
	for i := 0; i <= 7; i++ {
		alpha := float64(i) / 7
		f, err := fairrank.NewLinearFunc(fmt.Sprintf("task-%d", i), map[string]float64{
			"LanguageTest": alpha,
			"ApprovalRate": 1 - alpha,
		})
		if err != nil {
			log.Fatal(err)
		}
		funcs = append(funcs, f)
	}
	biased1, err := fairrank.NewRuleFunc("night-shift", 21, []fairrank.Rule{
		{When: fairrank.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: fairrank.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		log.Fatal(err)
	}
	biased2, err := fairrank.NewRuleFunc("translation", 22, []fairrank.Rule{
		{When: fairrank.AttrIs("Language", "English"), Lo: 0.7, Hi: 1.0},
		{When: fairrank.Any(), Lo: 0.0, Hi: 0.4},
	})
	if err != nil {
		log.Fatal(err)
	}
	funcs = append(funcs, biased1, biased2)

	audits, err := fairrank.RunCampaign(ds, funcs, fairrank.CampaignOptions{
		Rounds:      300,
		Alpha:       0.05,
		Parallelism: 8,
		Seed:        21,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s  %10s  %8s  %-6s  %s\n", "function", "unfairness", "p-value", "flag", "split on")
	fmt.Println(strings.Repeat("-", 64))
	for _, a := range audits {
		flag := ""
		if a.Significant {
			flag = "UNFAIR"
		}
		fmt.Printf("%-12s  %10.3f  %8.3f  %-6s  %s\n",
			a.Function, a.Unfairness, a.PValue, flag, strings.Join(a.AttributesUsed, ", "))
	}
	fmt.Println("\nflags are Benjamini-Hochberg corrected at FDR 0.05 across the catalog.")
}
