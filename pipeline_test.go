package fairrank_test

import (
	"fmt"
	"testing"

	"fairrank"
)

// TestEndToEndPipeline drives the whole system the way a platform operator
// would: generate a population with latent bias, select the candidate pool
// with a requester query, audit the pool, confirm significance, explain the
// attribute, repair the scores, re-rank the page, and finally feed the
// repaired scores through the monitor — each stage consuming the previous
// stage's output.
func TestEndToEndPipeline(t *testing.T) {
	// 1. A population whose English speakers have inflated skill values.
	ds, err := fairrank.GenerateSkewedWorkers(1200, 99, fairrank.PopulationOptions{
		SkillBias: 40, BiasAttr: "Language", BiasValue: "English",
	})
	if err != nil {
		t.Fatal(err)
	}

	// 2. A requester filters the pool.
	q, err := fairrank.CompileQuery("YearsExperience >= 2", ds.Schema())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := q.Select(ds)
	if err != nil {
		t.Fatal(err)
	}
	if pool.N() == 0 || pool.N() >= ds.N() {
		t.Fatalf("degenerate pool: %d", pool.N())
	}

	// 3. Audit the pool under an innocent skill-average function.
	f, err := fairrank.NewLinearFunc("task", map[string]float64{
		"LanguageTest": 0.5, "ApprovalRate": 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	auditor := fairrank.NewAuditor()
	res, err := auditor.Audit(pool, f, fairrank.AlgoBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfairness <= 0 {
		t.Fatal("no unfairness found on biased pool")
	}

	// 4. The disparity must be significant, and Language must top the
	// explanation.
	p, _, err := auditor.Significance(pool, f, res.Partitioning, 200)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.05 {
		t.Fatalf("latent bias not significant: p=%v", p)
	}
	imps, err := auditor.Explain(pool, f)
	if err != nil {
		t.Fatal(err)
	}
	if imps[0].Attribute != "Language" {
		t.Fatalf("top attribute = %s, want Language", imps[0].Attribute)
	}

	// 5. Repair the scores over the found partitioning.
	repaired, err := auditor.RepairedScores(pool, f, res.Partitioning, 1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := auditor.ScoreUnfairness(repaired, res.Partitioning)
	if err != nil {
		t.Fatal(err)
	}
	if after > res.Unfairness/2 {
		t.Fatalf("repair only reached %v from %v", after, res.Unfairness)
	}

	// 6. Re-rank the original page toward exposure parity and verify the
	// disparity dropped.
	ranked := fairrank.RankWorkers(pool, f, 0)
	fixed, err := fairrank.RerankExposureParity(pool, "Language", ranked,
		fairrank.RerankOptions{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	lang := pool.Schema().ProtectedIndex("Language")
	expBefore, err := fairrank.GroupExposure(pool, lang, ranked[:100])
	if err != nil {
		t.Fatal(err)
	}
	expAfter, err := fairrank.GroupExposure(pool, lang, fixed[:100])
	if err != nil {
		t.Fatal(err)
	}
	if fairrank.ExposureDisparity(expAfter) >= fairrank.ExposureDisparity(expBefore) {
		t.Fatalf("rerank did not reduce disparity: %v -> %v",
			fairrank.ExposureDisparity(expBefore), fairrank.ExposureDisparity(expAfter))
	}

	// 7. Feed the REPAIRED scores through the monitor: the Language
	// grouping must no longer alert.
	mon, err := fairrank.NewMonitor(pool.Schema(), []string{"Language"}, 10, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	schema := pool.Schema()
	for i := 0; i < pool.N(); i++ {
		attrs := map[string]any{}
		for a, attr := range schema.Protected {
			if attr.Kind == fairrank.Categorical {
				attrs[attr.Name] = attr.Values[pool.Code(a, i)]
			} else {
				attrs[attr.Name] = pool.RawProtected(a, i)
			}
		}
		if err := mon.Join(fmt.Sprintf("w%d", i), attrs, repaired[i]); err != nil {
			t.Fatal(err)
		}
	}
	if u, breached := mon.Alert(); breached {
		t.Fatalf("monitor alerts on repaired scores: %v", u)
	}
}
