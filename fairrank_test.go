package fairrank_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"fairrank"
)

func workers(t *testing.T, n int, seed uint64) *fairrank.Dataset {
	t.Helper()
	ds, err := fairrank.GenerateWorkers(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func linear(t *testing.T, name string, alpha float64) fairrank.ScoringFunc {
	t.Helper()
	f, err := fairrank.NewLinearFunc(name, map[string]float64{
		"LanguageTest": alpha,
		"ApprovalRate": 1 - alpha,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func genderBiased(t *testing.T, seed uint64) fairrank.ScoringFunc {
	t.Helper()
	f, err := fairrank.NewRuleFunc("f6", seed, []fairrank.Rule{
		{When: fairrank.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: fairrank.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAuditorAllAlgorithms(t *testing.T) {
	ds := workers(t, 300, 1)
	f := linear(t, "f1", 0.5)
	a := fairrank.NewAuditor()
	results, err := a.AuditAll(ds, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(fairrank.Algorithms) {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Algorithm != string(fairrank.Algorithms[i]) {
			t.Errorf("result %d is %q, want %q", i, r.Algorithm, fairrank.Algorithms[i])
		}
		if err := r.Partitioning.Validate(ds); err != nil {
			t.Errorf("%s: %v", r.Algorithm, err)
		}
	}
}

func TestAuditorUnknownAlgorithm(t *testing.T) {
	ds := workers(t, 50, 2)
	a := fairrank.NewAuditor()
	if _, err := a.Audit(ds, linear(t, "f", 0.5), "nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAuditAttrsSubset(t *testing.T) {
	ds := workers(t, 300, 3)
	a := fairrank.NewAuditor()
	res, err := a.AuditAttrs(ds, genderBiased(t, 3), fairrank.AlgoBalanced, []string{"Gender", "Country"})
	if err != nil {
		t.Fatal(err)
	}
	for _, attr := range res.Partitioning.AttributesUsed() {
		name := ds.Schema().Protected[attr].Name
		if name != "Gender" && name != "Country" {
			t.Errorf("audit used out-of-scope attribute %s", name)
		}
	}
	if _, err := a.AuditAttrs(ds, genderBiased(t, 3), fairrank.AlgoBalanced, []string{"Nope"}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestAuditFindsDesignedBias(t *testing.T) {
	ds := workers(t, 500, 4)
	a := fairrank.NewAuditor()
	res, err := a.Audit(ds, genderBiased(t, 4), fairrank.AlgoBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfairness < 0.75 {
		t.Fatalf("unfairness = %v, want ~0.8", res.Unfairness)
	}
	used := res.Partitioning.AttributesUsed()
	if len(used) != 1 || ds.Schema().Protected[used[0]].Name != "Gender" {
		t.Fatalf("expected a gender-only partitioning, used %v", used)
	}
}

func TestAuditorOptions(t *testing.T) {
	ds := workers(t, 200, 5)
	f := linear(t, "f", 0.5)
	a1 := fairrank.NewAuditor(fairrank.WithSeed(7))
	a2 := fairrank.NewAuditor(fairrank.WithSeed(7))
	r1, err := a1.Audit(ds, f, fairrank.AlgoRBalanced)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a2.Audit(ds, f, fairrank.AlgoRBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Unfairness != r2.Unfairness {
		t.Error("equal seeds disagreed")
	}

	cfgA := fairrank.NewAuditor(fairrank.WithConfig(fairrank.Config{Bins: 5}))
	cfgB := fairrank.NewAuditor(fairrank.WithConfig(fairrank.Config{Bins: 40}))
	ra, _ := cfgA.Audit(ds, f, fairrank.AlgoAllAttributes)
	rb, _ := cfgB.Audit(ds, f, fairrank.AlgoAllAttributes)
	if ra.Unfairness == rb.Unfairness {
		t.Error("bin count had no effect (suspicious)")
	}
}

func TestExhaustiveBudgetOption(t *testing.T) {
	ds := workers(t, 50, 6)
	a := fairrank.NewAuditor(fairrank.WithExhaustiveBudget(2))
	if _, err := a.Audit(ds, linear(t, "f", 0.5), fairrank.AlgoExhaustive); err == nil {
		t.Error("tiny budget did not fail on 6 attributes")
	}
	// With a subset of attributes and a real budget it succeeds.
	big := fairrank.NewAuditor(fairrank.WithExhaustiveBudget(100000))
	res, err := big.AuditAttrs(ds, linear(t, "f", 0.5), fairrank.AlgoExhaustive, []string{"Gender", "Country"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitioning == nil {
		t.Fatal("no partitioning from exhaustive")
	}
}

func TestGroupByAndUnfairness(t *testing.T) {
	ds := workers(t, 400, 7)
	f := genderBiased(t, 7)
	pt, err := fairrank.GroupBy(ds, "Gender")
	if err != nil {
		t.Fatal(err)
	}
	if pt.Size() != 2 {
		t.Fatalf("gender grouping has %d parts", pt.Size())
	}
	a := fairrank.NewAuditor()
	u, err := a.Unfairness(ds, f, pt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.8) > 0.05 {
		t.Fatalf("gender unfairness = %v, want ~0.8", u)
	}
	if _, err := fairrank.GroupBy(ds); err == nil {
		t.Error("GroupBy with no attributes accepted")
	}
	if _, err := fairrank.GroupBy(ds, "Nope"); err == nil {
		t.Error("GroupBy with unknown attribute accepted")
	}
}

func TestRepairRoundTrip(t *testing.T) {
	ds := workers(t, 400, 8)
	f := genderBiased(t, 8)
	a := fairrank.NewAuditor()
	res, err := a.Audit(ds, f, fairrank.AlgoBalanced)
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := a.RepairedScores(ds, f, res.Partitioning, 1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := a.ScoreUnfairness(repaired, res.Partitioning)
	if err != nil {
		t.Fatal(err)
	}
	if after > 0.05 {
		t.Fatalf("unfairness after repair = %v (before %v)", after, res.Unfairness)
	}
}

func TestCustomSchemaEndToEnd(t *testing.T) {
	schema := &fairrank.Schema{
		Protected: []fairrank.Attribute{
			fairrank.Cat("Team", "Red", "Blue"),
			fairrank.Num("Age", 18, 66, 4),
		},
		Observed: []fairrank.Attribute{fairrank.Num("Skill", 0, 10, 1)},
	}
	b := fairrank.NewBuilder(schema)
	for i := 0; i < 40; i++ {
		team := "Red"
		skill := float64(i%10) + 0.5
		if i%2 == 1 {
			team = "Blue"
			skill = 9.5 // blue team systematically boosted
		}
		b.Add(fmt.Sprintf("w%d", i),
			map[string]any{"Team": team, "Age": 20 + i%40},
			map[string]any{"Skill": skill})
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fairrank.NewLinearFunc("skill", map[string]float64{"Skill": 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fairrank.NewAuditor().Audit(ds, f, fairrank.AlgoUnbalanced)
	if err != nil {
		t.Fatal(err)
	}
	used := res.Partitioning.AttributesUsed()
	foundTeam := false
	for _, u := range used {
		if ds.Schema().Protected[u].Name == "Team" {
			foundTeam = true
		}
	}
	if !foundTeam {
		t.Fatalf("audit missed the Team bias; used %v, unfairness %v", used, res.Unfairness)
	}
}

func TestFuncOfAdapter(t *testing.T) {
	ds := workers(t, 50, 9)
	f := fairrank.FuncOf("half", func(*fairrank.Dataset, int) float64 { return 0.5 })
	res, err := fairrank.NewAuditor().Audit(ds, f, fairrank.AlgoAllAttributes)
	if err != nil {
		t.Fatal(err)
	}
	// A constant function is perfectly fair.
	if res.Unfairness != 0 {
		t.Fatalf("constant function unfairness = %v", res.Unfairness)
	}
}

func TestCSVRoundTripPublicAPI(t *testing.T) {
	ds := workers(t, 30, 10)
	var buf strings.Builder
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := fairrank.ReadCSV(strings.NewReader(buf.String()), fairrank.PaperSchema())
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 30 {
		t.Fatalf("round trip N = %d", back.N())
	}
}

func TestBeamPublicAPI(t *testing.T) {
	ds := workers(t, 200, 11)
	a := fairrank.NewAuditor()
	f := linear(t, "f", 0.5)
	bal, err := a.Audit(ds, f, fairrank.AlgoBalanced)
	if err != nil {
		t.Fatal(err)
	}
	beam, err := a.Beam(ds, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	if beam.Unfairness < bal.Unfairness-1e-9 {
		t.Fatalf("beam %v below balanced %v", beam.Unfairness, bal.Unfairness)
	}
	if _, err := a.Beam(ds, f, 0); err == nil {
		t.Error("width 0 accepted")
	}
}

func TestSignificancePublicAPI(t *testing.T) {
	ds := workers(t, 300, 12)
	a := fairrank.NewAuditor()
	f := genderBiased(t, 12)
	res, err := a.Audit(ds, f, fairrank.AlgoBalanced)
	if err != nil {
		t.Fatal(err)
	}
	p, obs, err := a.Significance(ds, f, res.Partitioning, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.05 || obs < 0.7 {
		t.Fatalf("p=%v obs=%v for designed bias", p, obs)
	}
}

func TestMinPartitionSizePublicAPI(t *testing.T) {
	ds := workers(t, 300, 13)
	a := fairrank.NewAuditor(fairrank.WithConfig(fairrank.Config{MinPartitionSize: 20}))
	res, err := a.Audit(ds, genderBiased(t, 13), fairrank.AlgoUnbalanced)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Partitioning.Parts {
		if p.Size() < 20 {
			t.Fatalf("partition of size %d despite MinPartitionSize=20", p.Size())
		}
	}
}

func TestMonitorPublicAPI(t *testing.T) {
	m, err := fairrank.NewMonitor(fairrank.PaperSchema(), []string{"Gender"}, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	attrs := map[string]any{
		"Gender": "Male", "Country": "America", "YearOfBirth": 1980,
		"Language": "English", "Ethnicity": "White", "YearsExperience": 5,
	}
	fattrs := map[string]any{}
	for k, v := range attrs {
		fattrs[k] = v
	}
	fattrs["Gender"] = "Female"
	for i := 0; i < 50; i++ {
		if err := m.Join(fmt.Sprintf("m%d", i), attrs, 0.9); err != nil {
			t.Fatal(err)
		}
		if err := m.Join(fmt.Sprintf("f%d", i), fattrs, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if u, breached := m.Alert(); !breached || u < 0.7 {
		t.Fatalf("u=%v breached=%v", u, breached)
	}
}

func TestRerankPublicAPI(t *testing.T) {
	ds := workers(t, 300, 15)
	f := genderBiased(t, 15)
	ranked := fairrank.RankWorkers(ds, f, 0)
	out, err := fairrank.RerankExposureParity(ds, "Gender", ranked, fairrank.RerankOptions{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	gender := ds.Schema().ProtectedIndex("Gender")
	before, _ := fairrank.GroupExposure(ds, gender, ranked[:50])
	after, _ := fairrank.GroupExposure(ds, gender, out[:50])
	if fairrank.ExposureDisparity(after) >= fairrank.ExposureDisparity(before) {
		t.Fatalf("disparity did not improve: %v -> %v",
			fairrank.ExposureDisparity(before), fairrank.ExposureDisparity(after))
	}
	if _, err := fairrank.RerankExposureParity(ds, "Nope", ranked, fairrank.RerankOptions{}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestQueryPublicAPI(t *testing.T) {
	ds := workers(t, 200, 16)
	q, err := fairrank.CompileQuery("Gender = 'Female' AND LanguageTest >= 50", ds.Schema())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := q.Select(ds)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() == 0 || sub.N() == ds.N() {
		t.Fatalf("degenerate selection: %d", sub.N())
	}
	// Audit just the selected sub-population.
	res, err := fairrank.NewAuditor().Audit(sub, linear(t, "f", 0.5), fairrank.AlgoAllAttributes)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partitioning.Validate(sub); err != nil {
		t.Fatal(err)
	}
	if _, err := fairrank.CompileQuery("][", ds.Schema()); err == nil {
		t.Error("malformed query accepted")
	}
}

func TestCampaignPublicAPI(t *testing.T) {
	ds := workers(t, 300, 17)
	funcs := []fairrank.ScoringFunc{
		linear(t, "fair", 0.5),
		genderBiased(t, 17),
	}
	audits, err := fairrank.RunCampaign(ds, funcs, fairrank.CampaignOptions{
		Rounds: 100, Parallelism: 2, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(audits) != 2 {
		t.Fatalf("%d audits", len(audits))
	}
	if !audits[1].Significant {
		t.Fatalf("biased function not flagged: %+v", audits[1])
	}
	if audits[1].Unfairness < 0.7 {
		t.Fatalf("biased unfairness = %v", audits[1].Unfairness)
	}
}

// ExampleAuditor demonstrates the basic audit flow.
func ExampleAuditor() {
	ds, _ := fairrank.GenerateWorkers(200, 42)
	f, _ := fairrank.NewRuleFunc("biased", 42, []fairrank.Rule{
		{When: fairrank.AttrIs("Gender", "Male"), Lo: 0.8, Hi: 1.0},
		{When: fairrank.AttrIs("Gender", "Female"), Lo: 0.0, Hi: 0.2},
	})
	res, _ := fairrank.NewAuditor().Audit(ds, f, fairrank.AlgoBalanced)
	attrs := res.Partitioning.AttributesUsed()
	fmt.Printf("split on %d attribute(s); unfairness > 0.7: %v\n",
		len(attrs), res.Unfairness > 0.7)
	// Output: split on 1 attribute(s); unfairness > 0.7: true
}
